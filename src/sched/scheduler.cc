#include "src/sched/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/features/light.h"
#include "src/sched/cost_table.h"
#include "src/sched/scheduler_session.h"

namespace litereconfig {

double TrainedModels::FeatureCostMs(FeatureKind kind, double gpu_cal,
                                    double cpu_cal) const {
  const FeatureCost& cost = GetFeatureCost(kind);
  size_t idx = static_cast<size_t>(kind);
  double extract =
      feature_extract_ms[idx] * (cost.extract_on_gpu ? gpu_cal : cpu_cal);
  double predict =
      feature_predict_ms[idx] * (cost.predict_on_gpu ? gpu_cal : cpu_cal);
  return extract + predict;
}

double SloLimitMs(const SchedulerConfig& config, const DecisionContext& ctx) {
  double slo = ctx.slo_ms;
  if (ctx.budget_ms > 0.0 && ctx.budget_ms < slo) {
    slo = ctx.budget_ms;
  }
  return slo * config.slo_margin;
}

LiteReconfigScheduler::LiteReconfigScheduler(const TrainedModels* models,
                                             SchedulerConfig config)
    : models_(models), config_(config) {
  assert(models_ != nullptr && models_->space != nullptr);
}

double LiteReconfigScheduler::FrameCostMs(size_t index,
                                          const std::vector<double>& light,
                                          double sched_ms,
                                          const DecisionContext& ctx) const {
  const Branch& branch = models_->space->at(index);
  int effective_gof = branch.gof;
  if (ctx.frames_remaining > 0) {
    effective_gof = std::min(effective_gof, ctx.frames_remaining);
  }
  // Conservative constraint evaluation: the tracked-object count can grow by
  // the time the GoF runs (new objects enter, confidences rise), so the
  // tracker cost is predicted at count + 1. Without this headroom, the
  // per-object cost of heavy trackers (CSRT ~8 ms/object/frame) makes P95
  // violations routine at mid SLOs.
  std::vector<double> conservative = light;
  conservative[2] += 1.0 / 8.0;
  // Availability mask (same form as DecisionCostTable::Build): a GPU-backed
  // branch under a denied GPU prices as +inf — enumerated, never feasible.
  // inf + finite = inf keeps this expression bit-identical to the table's.
  double frame_ms =
      (!ctx.gpu_available && !branch.detector.cpu)
          ? std::numeric_limits<double>::infinity()
          : models_->latency.PredictFrameMs(index, conservative, ctx.gpu_cal,
                                            ctx.cpu_cal, effective_gof);
  double switch_ms = 0.0;
  if (config_.use_switching_cost && ctx.current_branch.has_value() &&
      models_->switching.has_value()) {
    switch_ms = models_->switching->OfflineCostMs(
        models_->space->at(*ctx.current_branch), branch);
  }
  // Scheduler and switching costs occur once per GoF; amortize over its frames.
  return frame_ms + (sched_ms + switch_ms) / static_cast<double>(effective_gof);
}

std::vector<FeatureKind> LiteReconfigScheduler::SelectFeaturesReference(
    const std::vector<double>& light, const std::vector<double>& light_pred,
    const DecisionContext& ctx) const {
  double s0 = models_->FeatureCostMs(FeatureKind::kLight, ctx.gpu_cal, ctx.cpu_cal);
  double slo_limit = SloLimitMs(config_, ctx);
  // Best achievable light-only predicted accuracy under a given scheduler cost.
  auto base_best = [&](double sched_ms) {
    double best = -1.0;
    for (size_t b = 0; b < models_->space->size(); ++b) {
      if (FrameCostMs(b, light, sched_ms, ctx) <= slo_limit) {
        best = std::max(best, light_pred[b]);
      }
    }
    return best;
  };

  std::vector<FeatureKind> selected;
  double selected_cost = 0.0;
  double objective = base_best(s0);
  if (objective < 0.0) {
    // Not even the cheapest branch fits: no budget for content features.
    return selected;
  }
  while (static_cast<int>(selected.size()) < config_.max_heavy_features) {
    FeatureKind best_kind = FeatureKind::kLight;
    double best_objective = objective;
    for (FeatureKind kind : kHeavyFeatures) {
      if (std::find(selected.begin(), selected.end(), kind) != selected.end()) {
        continue;
      }
      std::vector<FeatureKind> candidate = selected;
      candidate.push_back(kind);
      double cand_cost =
          selected_cost + models_->FeatureCostMs(kind, ctx.gpu_cal, ctx.cpu_cal);
      double charged = config_.charge_feature_overhead ? s0 + cand_cost : s0;
      double base = base_best(charged);
      if (base < 0.0) {
        continue;  // the feature's cost leaves no feasible branch
      }
      double obj = base + models_->ben.BenSubset(candidate, ctx.slo_ms);
      if (obj > best_objective + config_.min_feature_gain) {
        best_objective = obj;
        best_kind = kind;
      }
    }
    if (best_kind == FeatureKind::kLight) {
      break;
    }
    selected.push_back(best_kind);
    selected_cost += models_->FeatureCostMs(best_kind, ctx.gpu_cal, ctx.cpu_cal);
    objective = best_objective;
  }
  return selected;
}

std::vector<FeatureKind> LiteReconfigScheduler::SelectFeaturesWithTable(
    const std::vector<double>& light_pred, const DecisionContext& ctx,
    const DecisionCostTable& table) const {
  double s0 = models_->FeatureCostMs(FeatureKind::kLight, ctx.gpu_cal, ctx.cpu_cal);
  // Best achievable light-only predicted accuracy under a given scheduler
  // cost. Identical comparisons to the reference form: the table holds the
  // same predicted branch costs, so feasibility is the same predicate on the
  // same doubles — only now it is three flops instead of a predictor pass.
  auto base_best = [&](double sched_ms) {
    double best = -1.0;
    for (size_t b = 0; b < table.size(); ++b) {
      if (table.Feasible(b, sched_ms)) {
        best = std::max(best, light_pred[b]);
      }
    }
    return best;
  };

  std::vector<FeatureKind> selected;
  double selected_cost = 0.0;
  double objective = base_best(s0);
  if (objective < 0.0) {
    // Not even the cheapest branch fits: no budget for content features.
    return selected;
  }
  while (static_cast<int>(selected.size()) < config_.max_heavy_features) {
    FeatureKind best_kind = FeatureKind::kLight;
    double best_objective = objective;
    for (FeatureKind kind : kHeavyFeatures) {
      if (std::find(selected.begin(), selected.end(), kind) != selected.end()) {
        continue;
      }
      std::vector<FeatureKind> candidate = selected;
      candidate.push_back(kind);
      double cand_cost =
          selected_cost + models_->FeatureCostMs(kind, ctx.gpu_cal, ctx.cpu_cal);
      double charged = config_.charge_feature_overhead ? s0 + cand_cost : s0;
      double base = base_best(charged);
      if (base < 0.0) {
        continue;  // the feature's cost leaves no feasible branch
      }
      double obj = base + models_->ben.BenSubset(candidate, ctx.slo_ms);
      if (obj > best_objective + config_.min_feature_gain) {
        best_objective = obj;
        best_kind = kind;
      }
    }
    if (best_kind == FeatureKind::kLight) {
      break;
    }
    selected.push_back(best_kind);
    selected_cost += models_->FeatureCostMs(best_kind, ctx.gpu_cal, ctx.cpu_cal);
    objective = best_objective;
  }
  return selected;
}

std::vector<FeatureKind> LiteReconfigScheduler::SelectFeatures(
    const std::vector<double>& light, const std::vector<double>& light_pred,
    const DecisionContext& ctx) const {
  DecisionCostTable table = DecisionCostTable::Build(*models_, config_, ctx, light);
  return SelectFeaturesWithTable(light_pred, ctx, table);
}

std::vector<FeatureKind> LiteReconfigScheduler::ChooseHeavyFeatures(
    const std::vector<double>& light, const std::vector<double>& light_pred,
    const DecisionContext& ctx, const DecisionCostTable* table) const {
  switch (config_.mode) {
    case LiteReconfigMode::kFull:
      return table != nullptr ? SelectFeaturesWithTable(light_pred, ctx, *table)
                              : SelectFeaturesReference(light, light_pred, ctx);
    case LiteReconfigMode::kMinCost:
      return {};
    case LiteReconfigMode::kMaxContentResNet:
      return {FeatureKind::kResNet50};
    case LiteReconfigMode::kMaxContentMobileNet:
      return {FeatureKind::kMobileNetV2};
    case LiteReconfigMode::kForceFeature:
      return {config_.forced_feature};
  }
  return {};
}

std::vector<double> LiteReconfigScheduler::PredictAccuracy(
    const std::vector<FeatureKind>& heavy, const std::vector<double>& light,
    const std::vector<double>& light_pred, const DecisionContext& ctx) const {
  if (heavy.empty()) {
    return light_pred;
  }
  std::vector<double> combined(models_->space->size(), 0.0);
  // Raster-backed features (HoC, HOG) share one frame render: the raster is
  // the dominant extraction cost and is identical for every feature of the
  // same frame.
  Image rendered;
  bool have_render = false;
  for (FeatureKind kind : heavy) {
    const bool needs_raster = FeatureNeedsRaster(kind);
    if (needs_raster && !have_render) {
      rendered = RenderFrame(*ctx.video, ctx.frame);
      have_render = true;
    }
    std::vector<double> content =
        ExtractFeature(kind, *ctx.video, ctx.frame, *ctx.anchor_detections,
                       needs_raster ? &rendered : nullptr);
    std::vector<double> pred = models_->accuracy.at(kind).Predict(light, content);
    for (size_t b = 0; b < combined.size(); ++b) {
      combined[b] += pred[b];
    }
  }
  // The content-aware models refine (not replace) the content-agnostic
  // prediction: blending with the light-only model bounds the estimation
  // variance the heavy models add on top of their content signal. The
  // blend == 0.5 form is kept verbatim so the default path stays bit-exact.
  for (size_t b = 0; b < combined.size(); ++b) {
    if (ctx.heavy_blend == 0.5) {
      combined[b] = 0.5 * (combined[b] / static_cast<double>(heavy.size()) +
                           light_pred[b]);
    } else {
      combined[b] =
          ctx.heavy_blend * (combined[b] / static_cast<double>(heavy.size())) +
          (1.0 - ctx.heavy_blend) * light_pred[b];
    }
  }
  return combined;
}

SchedulerDecision LiteReconfigScheduler::Decide(const DecisionContext& ctx,
                                                SchedulerSession* session) const {
  if (!config_.use_fast_path) {
    return DecideReference(ctx);
  }
  assert(ctx.video != nullptr && ctx.anchor_detections != nullptr);
  const VideoSpec& spec = ctx.video->spec();
  std::vector<double> light =
      ComputeLightFeatures(spec.width, spec.height, *ctx.anchor_detections);
  if (session != nullptr) {
    // Whole-decision replay: when every key field matches the cached decision
    // (and that decision used no heavy features), the pass below would
    // recompute the identical result — skip it.
    SchedulerDecision replayed;
    if (session->LookupDecision(*models_, config_, ctx, light, &replayed)) {
      return replayed;
    }
  }
  const AccuracyPredictor& light_model = models_->accuracy.at(FeatureKind::kLight);
  std::vector<double> light_pred = light_model.Predict(light, {});

  // The per-decision cost table: one latency-predictor pass per branch, shared
  // by feature selection, the branch scan, and the hysteresis check below.
  // Sessions serve it from their cross-GoF cache instead of rebuilding.
  DecisionCostTable local_table;
  const DecisionCostTable* table_ptr;
  if (session != nullptr) {
    table_ptr = &session->TableFor(*models_, config_, ctx);
  } else {
    local_table = DecisionCostTable::Build(*models_, config_, ctx, light);
    table_ptr = &local_table;
  }
  const DecisionCostTable& table = *table_ptr;

  // 1. Which heavy features to use.
  std::vector<FeatureKind> heavy = ChooseHeavyFeatures(light, light_pred, ctx, &table);

  // 2. Extract the selected features and run their accuracy models.
  double s0 = models_->FeatureCostMs(FeatureKind::kLight, ctx.gpu_cal, ctx.cpu_cal);
  double heavy_cost = 0.0;
  for (FeatureKind kind : heavy) {
    heavy_cost += models_->FeatureCostMs(kind, ctx.gpu_cal, ctx.cpu_cal);
  }
  std::vector<double> accuracy = PredictAccuracy(heavy, light, light_pred, ctx);

  // 3. Constrained optimization over branches (Eq. 3).
  double charged = config_.charge_feature_overhead ? s0 + heavy_cost : s0;
  SchedulerDecision decision;
  decision.heavy_features = std::move(heavy);
  decision.scheduler_cost_ms = s0 + heavy_cost;
  double best_acc = -1.0;
  size_t best_branch = 0;
  size_t cheapest_branch = table.Cheapest(charged);
  double feasible_cheapest_ms = std::numeric_limits<double>::infinity();
  size_t feasible_cheapest_branch = 0;
  for (size_t b = 0; b < table.size(); ++b) {
    double frame_ms = table.CostMs(b, charged);
    if (frame_ms > table.slo_limit_ms()) {
      continue;
    }
    if (frame_ms < feasible_cheapest_ms) {
      feasible_cheapest_ms = frame_ms;
      feasible_cheapest_branch = b;
    }
    if (accuracy[b] > best_acc) {
      best_acc = accuracy[b];
      best_branch = b;
    }
  }
  if (best_acc < 0.0) {
    // Nothing feasible: degrade to the cheapest branch.
    decision.infeasible = true;
    best_branch = cheapest_branch;
    best_acc = accuracy[cheapest_branch];
  } else if (ctx.prefer_headroom) {
    // Staged degradation under forecast pressure: take the feasible branch
    // with the most latency headroom, not the most accurate one, so the
    // forecast contention can land without blowing the SLO. Hysteresis is
    // skipped — sticking with an expensive current branch is exactly the
    // failure mode this stage exists to avoid.
    best_branch = feasible_cheapest_branch;
    best_acc = accuracy[feasible_cheapest_branch];
  } else if (config_.use_hysteresis && ctx.current_branch.has_value()) {
    // Anti-thrashing: keep the current branch unless the winner is clearly
    // better (the switching cost itself is already inside the constraint).
    size_t cur = *ctx.current_branch;
    double cur_ms = table.CostMs(cur, charged);
    if (cur_ms <= table.slo_limit_ms() &&
        accuracy[cur] >= best_acc - config_.switch_hysteresis) {
      best_branch = cur;
      best_acc = accuracy[cur];
    }
  }
  decision.branch_index = best_branch;
  decision.predicted_accuracy = best_acc;
  decision.predicted_frame_ms =
      models_->latency.PredictFrameMs(best_branch, light, ctx.gpu_cal, ctx.cpu_cal);
  if (ctx.current_branch.has_value() && models_->switching.has_value() &&
      *ctx.current_branch != best_branch) {
    decision.switch_cost_ms = models_->switching->OfflineCostMs(
        models_->space->at(*ctx.current_branch), models_->space->at(best_branch));
  }
  decision.light_features = std::move(light);
  if (session != nullptr) {
    session->StoreDecision(decision);
  }
  return decision;
}

SchedulerDecision LiteReconfigScheduler::DecideReference(
    const DecisionContext& ctx) const {
  assert(ctx.video != nullptr && ctx.anchor_detections != nullptr);
  const VideoSpec& spec = ctx.video->spec();
  std::vector<double> light =
      ComputeLightFeatures(spec.width, spec.height, *ctx.anchor_detections);
  const AccuracyPredictor& light_model = models_->accuracy.at(FeatureKind::kLight);
  std::vector<double> light_pred = light_model.Predict(light, {});

  // 1. Which heavy features to use (reference greedy selection for kFull).
  std::vector<FeatureKind> heavy =
      ChooseHeavyFeatures(light, light_pred, ctx, nullptr);

  // 2. Extract the selected features and run their accuracy models.
  double s0 = models_->FeatureCostMs(FeatureKind::kLight, ctx.gpu_cal, ctx.cpu_cal);
  double heavy_cost = 0.0;
  for (FeatureKind kind : heavy) {
    heavy_cost += models_->FeatureCostMs(kind, ctx.gpu_cal, ctx.cpu_cal);
  }
  std::vector<double> accuracy = PredictAccuracy(heavy, light, light_pred, ctx);

  // 3. Constrained optimization over branches (Eq. 3).
  double charged = config_.charge_feature_overhead ? s0 + heavy_cost : s0;
  SchedulerDecision decision;
  decision.heavy_features = std::move(heavy);
  decision.scheduler_cost_ms = s0 + heavy_cost;
  double slo_limit = SloLimitMs(config_, ctx);
  double best_acc = -1.0;
  size_t best_branch = 0;
  double cheapest_ms = std::numeric_limits<double>::infinity();
  size_t cheapest_branch = 0;
  double feasible_cheapest_ms = std::numeric_limits<double>::infinity();
  size_t feasible_cheapest_branch = 0;
  for (size_t b = 0; b < models_->space->size(); ++b) {
    double frame_ms = FrameCostMs(b, light, charged, ctx);
    if (frame_ms < cheapest_ms) {
      cheapest_ms = frame_ms;
      cheapest_branch = b;
    }
    if (frame_ms > slo_limit) {
      continue;
    }
    if (frame_ms < feasible_cheapest_ms) {
      feasible_cheapest_ms = frame_ms;
      feasible_cheapest_branch = b;
    }
    if (accuracy[b] > best_acc) {
      best_acc = accuracy[b];
      best_branch = b;
    }
  }
  if (best_acc < 0.0) {
    // Nothing feasible: degrade to the cheapest branch.
    decision.infeasible = true;
    best_branch = cheapest_branch;
    best_acc = accuracy[cheapest_branch];
  } else if (ctx.prefer_headroom) {
    // Staged degradation under forecast pressure: take the feasible branch
    // with the most latency headroom, not the most accurate one, so the
    // forecast contention can land without blowing the SLO. Hysteresis is
    // skipped — sticking with an expensive current branch is exactly the
    // failure mode this stage exists to avoid.
    best_branch = feasible_cheapest_branch;
    best_acc = accuracy[feasible_cheapest_branch];
  } else if (config_.use_hysteresis && ctx.current_branch.has_value()) {
    // Anti-thrashing: keep the current branch unless the winner is clearly
    // better (the switching cost itself is already inside the constraint).
    size_t cur = *ctx.current_branch;
    double cur_ms = FrameCostMs(cur, light, charged, ctx);
    if (cur_ms <= slo_limit &&
        accuracy[cur] >= best_acc - config_.switch_hysteresis) {
      best_branch = cur;
      best_acc = accuracy[cur];
    }
  }
  decision.branch_index = best_branch;
  decision.predicted_accuracy = best_acc;
  decision.predicted_frame_ms =
      models_->latency.PredictFrameMs(best_branch, light, ctx.gpu_cal, ctx.cpu_cal);
  if (ctx.current_branch.has_value() && models_->switching.has_value() &&
      *ctx.current_branch != best_branch) {
    decision.switch_cost_ms = models_->switching->OfflineCostMs(
        models_->space->at(*ctx.current_branch), models_->space->at(best_branch));
  }
  decision.light_features = std::move(light);
  return decision;
}

}  // namespace litereconfig
