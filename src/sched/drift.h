// Online drift detection (paper Section 6, "Online drift in the data").
//
// LiteReconfig assumes the online and offline distributions are iid; when they
// drift, the paper prescribes retraining the affected component: the latency
// predictor when the device's compute behaviour changes, the accuracy predictor
// (and benefit tables) when the content distribution changes. This monitor
// detects both conditions online:
//   * Latency drift — a persistent bias between calibrated predictions and
//     observations. Transient contention is absorbed by the calibration loop;
//     what remains (thermal throttling, DVFS policy changes, a different
//     device) shows up as a sustained relative error.
//   * Content drift — a shift in the running distribution of detector outputs
//     (confidence mean and objects per frame) relative to the baseline window
//     established when the monitor starts (i.e., the regime the predictors
//     were trained in).
#ifndef SRC_SCHED_DRIFT_H_
#define SRC_SCHED_DRIFT_H_

#include <cstddef>
#include <deque>

#include "src/vision/box.h"

namespace litereconfig {

struct DriftConfig {
  // Observations per window (one per GoF).
  size_t window = 48;
  // Sustained |observed - predicted| / predicted above this flags latency drift.
  double latency_rel_threshold = 0.30;
  // Shift of the mean detection confidence (absolute) that flags content drift.
  double score_shift_threshold = 0.12;
  // Shift of the mean confident-object count that flags content drift.
  double count_shift_threshold = 1.5;
};

struct DriftStatus {
  bool latency_drift = false;
  bool content_drift = false;
  // Diagnostics.
  double latency_rel_bias = 0.0;
  double score_shift = 0.0;
  double count_shift = 0.0;

  bool Any() const { return latency_drift || content_drift; }
};

class DriftMonitor {
 public:
  explicit DriftMonitor(const DriftConfig& config = {});

  // One observation per GoF: the calibrated per-frame prediction vs. what the
  // platform actually charged.
  void ObserveLatency(double predicted_ms, double observed_ms);

  // One observation per detector invocation: its output distribution.
  void ObserveDetections(const DetectionList& detections);

  // Current drift assessment. The first full window forms the baseline; until
  // both the baseline and a comparison window exist, nothing is flagged.
  DriftStatus Check() const;

  // Accepts the current regime as the new baseline (call after retraining).
  void Rebaseline();

  const DriftConfig& config() const { return config_; }

 private:
  struct Window {
    double score_mean = 0.0;
    double count_mean = 0.0;
    size_t samples = 0;
  };

  DriftConfig config_;
  // Latency relative errors, most recent config_.window kept.
  std::deque<double> latency_rel_errors_;
  // Content baseline (frozen) and the rolling current window.
  bool baseline_frozen_ = false;
  Window baseline_;
  Window accumulating_;
  std::deque<std::pair<double, double>> recent_content_;  // (mean score, count)
};

}  // namespace litereconfig

#endif  // SRC_SCHED_DRIFT_H_
