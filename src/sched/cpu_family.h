// Extends a trained model bundle over the default branch space with the
// YOLO-LITE-style CPU-only branch family (BranchSpace::WithCpuFamily) without
// retraining.
//
// Retraining would fork the cached bundle per branch space and double the
// offline pass for a family whose response surface is, by construction, a
// scaled sibling of a GPU family the bundle already knows. Instead the
// extension grafts: every CPU branch maps to its GPU reference (same shape,
// nprop, GoF and tracker), its mean accuracy is CpuBranchAccuracyFactor(gof)
// times the reference's, and each accuracy MLP's linear output layer gains one
// row per CPU branch — a factor-scaled copy of the reference row — which makes
// the extended net's prediction for a CPU branch exactly the factor times its
// reference prediction (before the [0, 1] clamp), with every existing output
// bit-identical. The latency predictor is re-profiled over the extended space
// from the same analytic platform model, which reproduces the base entries
// exactly and prices the CPU detectors through the CPU clock.
#ifndef SRC_SCHED_CPU_FAMILY_H_
#define SRC_SCHED_CPU_FAMILY_H_

#include <algorithm>

#include "src/sched/scheduler.h"

namespace litereconfig {

// Accuracy discount of the CPU-only family relative to its GPU reference
// branch (YOLO-LITE's trade: real-time with no GPU at a usable accuracy
// point, distinctly below the full model).
inline constexpr double kCpuAccuracyFactor = 0.85;

// Tracker extrapolation compounds the CPU anchor's extra localization noise:
// every tracked frame inherits — and amplifies — the anchor's error, so a
// long GoF loses more of the reference surface than the anchor alone does.
// Without this term the graft inherits the GPU model's cross-GoF ranking and
// the masked scheduler happily stretches one noisy CPU anchor across a
// 50-frame GoF; with it, denial windows are served by short-GoF refresh.
inline constexpr double kCpuDriftPerFrame = 0.006;
inline constexpr double kCpuDriftFloor = 0.5;

// Accuracy factor of a CPU branch with the given GoF length relative to its
// GPU reference branch.
inline double CpuBranchAccuracyFactor(int gof) {
  double drift = 1.0 - kCpuDriftPerFrame * static_cast<double>(gof - 1);
  return kCpuAccuracyFactor * std::max(kCpuDriftFloor, drift);
}

// Grafts the CPU family onto a bundle trained over BranchSpace::Default().
// The returned bundle's space is BranchSpace::WithCpuFamily(); predictions
// and costs for the original branches are bit-identical to `base`'s.
TrainedModels ExtendWithCpuFamily(const TrainedModels& base);

}  // namespace litereconfig

#endif  // SRC_SCHED_CPU_FAMILY_H_
