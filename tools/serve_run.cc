// Multi-tenant serving runner: admits a seeded arrival trace of live streams
// into the StreamingService and reports per-class deadline misses, aggregate
// accuracy and the per-stream outcomes. The --json artifact is byte-identical
// at any --threads value for a fixed arrival seed — the serve-determinism CI
// job diffs exactly that file across thread counts.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/serve/serve_runner.h"
#include "src/pipeline/workbench.h"
#include "src/util/flags.h"
#include "src/util/strings.h"

namespace litereconfig {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags(
      "serve_run — serve an open set of live video streams on one device, with "
      "admission control, endogenous contention and a global GPU-budget "
      "allocator.");
  flags.Define("device", "tx2", "target device: tx2 | xavier");
  flags.Define("streams", "8", "streams in the arrival trace");
  flags.Define("arrival_seed", "1", "seed of the arrival trace");
  flags.Define("frames", "120", "frames per stream");
  flags.Define("slo", "33.3", "per-frame latency objective, ms");
  flags.Define("interarrival", "2", "mean rounds between arrivals");
  flags.Define("allocator", "costbenefit",
               "GPU budget policy: costbenefit | equalsplit");
  flags.Define("capacity", "0.9",
               "admission capacity: max total GPU share across streams");
  flags.Define("max_streams", "16", "max concurrently admitted streams");
  flags.Define("threads", "0",
               "worker threads for the per-stream fan-out (0 = all cores); "
               "results (json and trace included) are identical for every value");
  std::string preset_list = FaultPresetList();
  flags.Define("faults", "none", "fault-injection schedule: " + preset_list);
  flags.Define("fault_seed", "1",
               "seed for the deterministic fault streams (device-wide "
               "intervals + per-stream substreams)");
  flags.Define("degrade", "1",
               "1 = graceful degradation (per-stream retry/coast plus the "
               "pressure ladder: demote to the CPU family, coast, renegotiate, "
               "evict); 0 = naive blocking retries and no load shedding");
  flags.Define("cpu_family", "0",
               "1 = extend the branch space with the CPU-only detector family "
               "so denied rounds run scheduled CPU detection instead of "
               "tracker-only coasting");
  flags.Define("json", "", "write the serving result as one-line JSON here");
  flags.Define("trace", "", "write the per-stream decision trace (JSONL) here");
  if (!flags.Parse(argc, argv)) {
    flags.PrintHelp(flags.help_requested() ? std::cout : std::cerr);
    return flags.help_requested() ? 0 : 1;
  }

  DeviceType device =
      flags.GetString("device") == "xavier" ? DeviceType::kXavier : DeviceType::kTx2;
  std::optional<AllocatorMode> mode =
      AllocatorModeFromName(flags.GetString("allocator"));
  if (!mode) {
    std::cerr << "unknown allocator '" << flags.GetString("allocator")
              << "' (want costbenefit | equalsplit)\n";
    return 1;
  }
  const Workbench& wb = Workbench::Get(device);

  ArrivalSpec spec;
  spec.seed = static_cast<uint64_t>(flags.GetInt("arrival_seed"));
  spec.num_streams = flags.GetInt("streams");
  spec.frames_per_video = flags.GetInt("frames");
  spec.slo_ms = flags.GetDouble("slo");
  spec.mean_interarrival_rounds = flags.GetDouble("interarrival");

  ServeConfig config;
  config.allocator.mode = *mode;
  config.admission.capacity = flags.GetDouble("capacity");
  config.admission.max_streams =
      static_cast<size_t>(std::max(flags.GetInt("max_streams"), 0));
  config.threads = flags.GetInt("threads");
  std::optional<FaultSpec> faults = FaultSpec::FromName(flags.GetString("faults"));
  if (!faults) {
    std::cerr << "unknown fault schedule '" << flags.GetString("faults")
              << "' (want " << preset_list << ")\n";
    return 1;
  }
  config.faults.spec = *faults;
  config.faults.fault_seed = static_cast<uint64_t>(flags.GetInt("fault_seed"));
  config.faults.degrade = flags.GetInt("degrade") != 0;

  std::ofstream trace_file;
  std::unique_ptr<TraceWriter> trace;
  if (!flags.GetString("trace").empty()) {
    trace_file.open(flags.GetString("trace"));
    if (!trace_file) {
      std::cerr << "cannot open trace file " << flags.GetString("trace") << "\n";
      return 1;
    }
    trace = std::make_unique<TraceWriter>(trace_file);
  }

  const TrainedModels& models =
      flags.GetInt("cpu_family") != 0 ? wb.cpu_family_models() : wb.models();
  ServeEval eval = ServeRunner::Run(models, spec, config, trace.get());
  const ServeResult& result = eval.result;

  if (trace != nullptr) {
    // Flush grouped by stream id, ascending: byte-identical at any --threads.
    std::vector<uint64_t> stream_order;
    stream_order.reserve(result.streams.size());
    for (const StreamOutcome& outcome : result.streams) {
      stream_order.push_back(outcome.stream_id);
    }
    trace->Flush(stream_order);
  }
  if (!flags.GetString("json").empty()) {
    std::ofstream json(flags.GetString("json"));
    if (!json) {
      std::cerr << "cannot open json file " << flags.GetString("json") << "\n";
      return 1;
    }
    json << ServeEvalJson(eval) << "\n";
  }

  std::cout << "device:           " << GetDeviceProfile(device).name << "\n"
            << "allocator:        " << AllocatorModeName(*mode) << "\n"
            << "streams:          " << result.streams.size() << " arrived, "
            << result.admitted << " admitted, " << result.rejected
            << " rejected\n"
            << "rounds:           " << result.rounds << " (peak concurrency "
            << result.peak_concurrency << ", peak queue " << result.peak_queue
            << ")\n"
            << "mean accuracy:    " << FmtDouble(result.mean_accuracy * 100.0, 2)
            << " % (per-stream mAP)\n"
            << "frames served:    " << result.total_frames << "\n"
            << "deadline misses:  " << result.total_misses << "\n";
  for (int c = 0; c < kNumSloClasses; ++c) {
    size_t cls = static_cast<size_t>(c);
    if (result.streams_by_class[cls] == 0) {
      continue;
    }
    double rate = result.gofs_by_class[cls] > 0
                      ? static_cast<double>(result.misses_by_class[cls]) /
                            static_cast<double>(result.gofs_by_class[cls])
                      : 0.0;
    std::cout << "  " << SloClassName(static_cast<SloClass>(c)) << ": "
              << result.streams_by_class[cls] << " streams, "
              << result.misses_by_class[cls] << "/" << result.gofs_by_class[cls]
              << " GoFs missed (" << FmtDouble(rate * 100.0, 2) << " %)\n";
  }
  if (result.faults_active) {
    std::cout << "faults:           " << flags.GetString("faults") << " (seed "
              << config.faults.fault_seed << ", degradation "
              << (config.faults.degrade ? "on" : "off") << ")\n"
              << "robustness:       " << result.faults_injected << " injected, "
              << result.faults_absorbed << " absorbed, "
              << result.degraded_frames << " degraded frames\n"
              << "pressure ladder:  " << result.coasted_rounds
              << " coasted rounds, " << result.renegotiations
              << " renegotiations, " << result.evictions << " evictions";
    if (result.evictions > 0) {
      std::cout << " (";
      bool first = true;
      for (int c = 0; c < kNumSloClasses; ++c) {
        size_t cls = static_cast<size_t>(c);
        if (result.evictions_by_class[cls] == 0) {
          continue;
        }
        if (!first) {
          std::cout << ", ";
        }
        first = false;
        std::cout << result.evictions_by_class[cls] << " "
                  << SloClassName(static_cast<SloClass>(c));
      }
      std::cout << ")";
    }
    std::cout << "\n";
  }
  if (trace != nullptr) {
    std::cout << "wrote " << trace->count() << " trace records to "
              << flags.GetString("trace") << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace litereconfig

int main(int argc, char** argv) { return litereconfig::Run(argc, argv); }
