// Summarizes a decision trace produced by litereconfig_run --trace: branch
// usage histogram, feature usage, switch behaviour, and prediction quality
// (predicted vs realized latency).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>

#include "src/pipeline/trace.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace litereconfig {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags("trace_summary — analyze a decision trace (JSONL).");
  flags.Define("top", "12", "branches to list in the histogram");
  if (!flags.Parse(argc, argv) || flags.positional().size() != 1) {
    flags.PrintHelp(flags.help_requested() ? std::cout : std::cerr);
    std::cerr << "usage: trace_summary [--top N] <trace.jsonl>\n";
    return flags.help_requested() ? 0 : 1;
  }
  const std::string& path = flags.positional()[0];
  std::ifstream file(path);
  if (!file) {
    std::cerr << "error: cannot open " << path << "\n";
    return 1;
  }
  // Strict parse: a malformed line means the trace is truncated or corrupted,
  // and summarizing the readable prefix would silently undercount.
  std::string parse_error;
  auto parsed = TraceReader::ReadAllStrict(file, &parse_error);
  if (file.bad()) {
    std::cerr << "error: I/O failure while reading " << path << "\n";
    return 1;
  }
  if (!parsed) {
    std::cerr << "error: " << path << ": " << parse_error << "\n";
    return 1;
  }
  std::vector<DecisionRecord> records = std::move(*parsed);
  if (records.empty()) {
    std::cerr << "error: no decision records found in " << path << "\n";
    return 1;
  }

  std::map<std::string, int> branch_counts;
  std::map<std::string, int> feature_counts;
  RunningStat actual;
  RunningStat prediction_error;
  std::map<std::string, int> fault_counts;
  int switches = 0;
  int infeasible = 0;
  int frames = 0;
  int decisions = 0;
  // Robustness accounting: deadline misses, recovery episodes (maximal runs of
  // consecutive missed decisions within one video), and the predictive layer's
  // model-maintenance events.
  int misses = 0;
  int recovery_episodes = 0;
  int episode_gofs = 0;
  int recalibrations = 0;
  int reanchors = 0;
  int replans = 0;
  // Serving pressure-ladder events (multi-tenant traces only).
  int renegotiations = 0;
  int evictions = 0;
  // GPU-denial accounting: family demotion/restoration edges plus the share of
  // decisions served by the CPU-only family (branch ids read "c<shape>_...").
  int demotions = 0;
  int restorations = 0;
  int cpu_decisions = 0;
  int cpu_frames = 0;
  uint64_t episode_video = 0;
  bool in_episode = false;
  for (const DecisionRecord& record : records) {
    if (record.event == "fault") {
      // Fault events carry the failure kind in branch_id.
      ++fault_counts[record.branch_id];
      continue;
    }
    if (record.event == "recalibrate") {
      ++recalibrations;
      continue;
    }
    if (record.event == "reanchor") {
      ++reanchors;
      continue;
    }
    if (record.event == "replan") {
      ++replans;
      continue;
    }
    if (record.event == "renegotiate") {
      ++renegotiations;
      continue;
    }
    if (record.event == "evict") {
      ++evictions;
      continue;
    }
    if (record.event == "demote") {
      ++demotions;
      continue;
    }
    if (record.event == "restore") {
      ++restorations;
      continue;
    }
    if (in_episode && record.video_seed != episode_video) {
      in_episode = false;
    }
    if (record.missed) {
      ++misses;
      if (!in_episode) {
        ++recovery_episodes;
        in_episode = true;
        episode_video = record.video_seed;
      }
      ++episode_gofs;
    } else {
      in_episode = false;
    }
    ++decisions;
    if (!record.branch_id.empty() && record.branch_id[0] == 'c') {
      ++cpu_decisions;
      cpu_frames += record.gof_length;
    }
    branch_counts[record.branch_id] += record.gof_length;
    for (const std::string& feature : record.features) {
      ++feature_counts[feature];
    }
    actual.Add(record.actual_frame_ms);
    if (record.predicted_frame_ms > 0.0) {
      prediction_error.Add((record.actual_frame_ms - record.predicted_frame_ms) /
                           record.predicted_frame_ms);
    }
    switches += record.switched ? 1 : 0;
    infeasible += record.infeasible ? 1 : 0;
    frames += record.gof_length;
  }

  std::cout << decisions << " decisions over " << frames << " frames; "
            << switches << " switches, " << infeasible << " infeasible.\n"
            << "per-frame latency: mean " << FmtDouble(actual.mean(), 2)
            << " ms, max " << FmtDouble(actual.max(), 2) << " ms\n"
            << "latency prediction bias: "
            << FmtDouble(prediction_error.mean() * 100.0, 1) << "% (stddev "
            << FmtDouble(prediction_error.stddev() * 100.0, 1) << "%)\n\n";

  std::vector<std::pair<int, std::string>> ranked;
  for (const auto& [branch, frame_count] : branch_counts) {
    ranked.emplace_back(frame_count, branch);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  TablePrinter table({"Branch", "Frames", "Share %"});
  int top = flags.GetInt("top");
  for (int i = 0; i < top && i < static_cast<int>(ranked.size()); ++i) {
    table.AddRow({ranked[static_cast<size_t>(i)].second,
                  std::to_string(ranked[static_cast<size_t>(i)].first),
                  FmtDouble(100.0 * ranked[static_cast<size_t>(i)].first / frames, 1)});
  }
  table.Print(std::cout);

  if (!feature_counts.empty()) {
    std::cout << "\nContent features used per decision:\n";
    for (const auto& [feature, count] : feature_counts) {
      std::cout << "  " << feature << ": " << count << " ("
                << FmtDouble(100.0 * count / std::max(decisions, 1), 1)
                << "% of decisions)\n";
    }
  } else {
    std::cout << "\nNo content features were used (content-agnostic run).\n";
  }
  if (!fault_counts.empty()) {
    std::cout << "\nFault events:\n";
    for (const auto& [kind, count] : fault_counts) {
      std::cout << "  " << kind << ": " << count << "\n";
    }
  }
  if (misses > 0 || recalibrations > 0 || reanchors > 0 || replans > 0 ||
      renegotiations > 0 || evictions > 0) {
    std::cout << "\nRobustness:\n"
              << "  deadline misses: " << misses << " over " << recovery_episodes
              << " recovery episodes";
    if (recovery_episodes > 0) {
      std::cout << " (mean "
                << FmtDouble(static_cast<double>(episode_gofs) /
                                 recovery_episodes,
                             2)
                << " GoFs)";
    }
    std::cout << "\n  recalibrations: " << recalibrations
              << ", re-anchors: " << reanchors
              << ", pre-emptive re-plans: " << replans << "\n";
    if (renegotiations > 0 || evictions > 0) {
      std::cout << "  SLO renegotiations: " << renegotiations
                << ", evictions: " << evictions << "\n";
    }
  }
  // Denial report: windows where every GPU kernel was unavailable, and how
  // they were served. Demote/restore edges bracket CPU-fallback episodes; a
  // window with no CPU family in the branch space falls back to coasting,
  // which writes no decision records.
  auto denied_it = fault_counts.find("gpu_denied");
  int denial_windows = denied_it != fault_counts.end() ? denied_it->second : 0;
  if (denial_windows > 0 || demotions > 0 || restorations > 0 ||
      cpu_decisions > 0) {
    std::cout << "\nGPU denial:\n"
              << "  denial windows entered: " << denial_windows << "\n"
              << "  family demotions: " << demotions
              << ", restorations: " << restorations << "\n"
              << "  CPU-family decisions: " << cpu_decisions << " ("
              << cpu_frames << " frames, "
              << FmtDouble(100.0 * cpu_frames / std::max(frames, 1), 1)
              << "% of traced frames)\n";
    if (demotions == 0 && denial_windows > 0) {
      std::cout << "  all denial windows coasted (no CPU family in the branch "
                   "space)\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace litereconfig

int main(int argc, char** argv) { return litereconfig::Run(argc, argv); }
