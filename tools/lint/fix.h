// Mechanical fixes for detlint's mechanically-checkable rules.
//
// Three fix families, all derived directly from the file contents (so fixing
// is idempotent and needs no prior lint run):
//
//   header-guard   rewrite a wrong #ifndef/#define guard pair to the
//                  repo-relative uppercase form, and rewrite the closing
//                  line to the exact "#endif  // GUARD" trailer.
//   include-path   rewrite relative project includes ("../util/rng.h",
//                  "rng.h") to repo-rooted form, resolved against the
//                  including file's directory and verified against the set
//                  of files that actually exist in the scan.
//
// Anything not mechanically derivable (missing guards entirely, #pragma
// once conversion, semantic violations) is left to a human.
#ifndef TOOLS_LINT_FIX_H_
#define TOOLS_LINT_FIX_H_

#include <set>
#include <string>
#include <vector>

namespace litereconfig {

struct FixEdit {
  int line = 0;  // 1-based
  std::string before;
  std::string after;
};

struct FixResult {
  bool changed = false;
  std::string content;          // full fixed contents
  std::vector<FixEdit> edits;   // for dry-run diff reporting
};

// `known_files` holds every repo-relative path in the scan set, used to
// validate include-path rewrites.
FixResult FixFileContent(const std::string& repo_relative_path,
                         const std::string& content,
                         const std::set<std::string>& known_files);

}  // namespace litereconfig

#endif  // TOOLS_LINT_FIX_H_
