// The shared source model behind detlint's multi-pass analyses.
//
// detlint v1 was a per-line token scanner; the v2 passes (rng-stream
// discipline, lock-order graphs, include layering) need *structure*: which
// characters are code vs. comment vs. string, where escape comments sit and
// whether they ever suppressed anything, which extents are conditional, where
// function and class bodies begin and end. This header models exactly that
// much structure — deliberately heuristic, token-level, and std-only, so the
// linter keeps building without the product library or a real C++ frontend.
//
// The model is conservative where it matters: a construct the scanner cannot
// classify becomes a neutral scope, never a silent exemption, and every
// heuristic is pinned by fixtures in tests/lint_test.cc.
#ifndef TOOLS_LINT_SOURCE_MODEL_H_
#define TOOLS_LINT_SOURCE_MODEL_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace litereconfig {

// One file handed to the analyzer: repo-relative path plus full contents.
struct SourceFile {
  std::string path;
  std::string content;
};

// Per-character classification of a translation unit.
enum class CharClass : unsigned char { kCode, kComment, kString };

struct MaskedSource {
  // Contents with comments and string/char literals blanked to spaces
  // (line structure preserved) — what the token passes scan.
  std::string stripped;
  // mask[i] classifies content[i]. Same length as the original content.
  std::vector<CharClass> mask;
};

// Strips comments and string/character literals (including raw strings),
// recording which class each character had. The stripped text is what every
// pass token-matches against; the mask is what the escape parser uses to
// accept `// detlint:` directives only inside real comments (a directive
// quoted in a string literal is prose, not an escape).
MaskedSource StripWithMask(const std::string& content);

// --- escapes -------------------------------------------------------------

// One `// detlint:` directive. Three vocabularies:
//   // detlint: allow(rule-a, rule-b) reason        — suppress listed rules
//   // detlint: order-independent [reason]          — suppress unordered-iter
//   // detlint: stream-stable(reason)               — bless a conditional RNG
//                                                     draw as schedule-invariant
// A directive on a line applies to that line; a directive on a line that is
// nothing but a comment also applies to the next line.
struct Escape {
  int line = 0;  // 1-based line the directive is written on
  std::set<std::string> rules;
  bool has_reason = false;
  bool used = false;
};

// Parses every escape in a file and tracks which ones actually suppressed a
// violation, so the unused-escape pass can flag the stale ones.
class EscapeRegistry {
 public:
  EscapeRegistry() = default;
  static EscapeRegistry Parse(const std::string& content,
                              const MaskedSource& masked);

  // True when `rule` is escaped at `line` (1-based): a directive on the line
  // itself or on a directly preceding comment-only line. Marks the matching
  // escape used.
  bool Allows(int line, const std::string& rule);

  // The stream-stable vocabulary, looked up at the draw line, its preceding
  // comment line, or any of the supplied guard-header lines (so one escape on
  // the `if (...)` line blesses every draw in that conditional). Marks used.
  bool StreamStableAt(int line, const std::vector<int>& guard_lines);

  const std::vector<Escape>& escapes() const { return escapes_; }
  std::vector<Escape>& mutable_escapes() { return escapes_; }

 private:
  // Escapes indexed by every line they apply to.
  std::vector<size_t> ApplicableTo(int line) const;

  std::vector<Escape> escapes_;
  std::map<int, std::vector<size_t>> by_line_;
};

// --- structure -----------------------------------------------------------

// A half-open character interval [begin, end) of the file.
struct Extent {
  size_t begin = 0;
  size_t end = 0;
  bool Contains(size_t pos) const { return pos >= begin && pos < end; }
};

// The guarded extent of one `if` / `else` / `switch` (brace block or single
// statement). `header_line` is where the keyword sits — an escape written
// there blesses the whole extent.
struct ConditionalExtent {
  Extent extent;
  int header_line = 0;  // 1-based
};

// One function *definition* (a body was found). `name` keeps any `Class::`
// qualification; `params` is the parameter-list text; `acquires`/`requires_`
// hold the mutex expressions named by LR_ACQUIRE / LR_REQUIRES annotations on
// the definition.
struct FunctionModel {
  std::string name;        // possibly qualified, e.g. "ThreadPool::ParallelFor"
  std::string bare_name;   // "ParallelFor"
  std::string class_name;  // "" for free functions (out-of-line defs resolve
                           // through the qualifier; in-class defs through the
                           // enclosing class extent)
  std::string params;      // parameter-list text (stripped)
  Extent body;             // between the braces, exclusive of them
  int line = 0;            // 1-based line of the opening brace
  std::vector<std::string> acquires;   // LR_ACQUIRE(x) on the definition
  std::vector<std::string> requires_;  // LR_REQUIRES(x) on the definition
};

// One data member of a class/struct.
struct MemberModel {
  std::string name;
  std::string decl;  // statement text (stripped, LR attributes removed)
  int line = 0;      // 1-based
  bool guarded = false;    // carries LR_GUARDED_BY(...) / LR_PT_GUARDED_BY(...)
  bool is_mutex = false;   // type Mutex
  bool is_condvar = false; // type CondVar
  bool is_atomic = false;  // std::atomic<...> — synchronizes itself
  bool is_const = false;   // constant after construction
  bool is_reference = false;  // binding fixed at construction
  bool is_static = false;  // class state, owned by the mutable-global rule
  bool has_initializer = false;  // brace-or-equals initializer on the decl
  std::string guarded_by;  // the mutex expression inside LR_GUARDED_BY(...)
};

struct ClassModel {
  std::string name;  // possibly qualified, e.g. "DeferredTask::State"
  Extent body;       // between the braces
  int line = 0;
  std::vector<MemberModel> members;
  bool owns_mutex = false;  // has a member of type Mutex

  const MemberModel* FindMember(const std::string& member_name) const;
};

// The full per-file model every pass consumes.
struct FileModel {
  const SourceFile* file = nullptr;
  MaskedSource masked;
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;  // stripped, split
  EscapeRegistry escapes;
  std::vector<ConditionalExtent> conditionals;
  std::vector<FunctionModel> functions;
  std::vector<ClassModel> classes;

  // 1-based line of a character position in the stripped text.
  int LineAt(size_t pos) const;
  // Header lines of every conditional whose extent contains `pos`, innermost
  // last, restricted to conditionals inside `within` (a function body).
  std::vector<int> GuardLinesAt(size_t pos, const Extent& within) const;
  // True when `pos` lies in some conditional extent inside `within`.
  bool InConditional(size_t pos, const Extent& within) const;
  // The function whose body contains `pos`, or nullptr.
  const FunctionModel* FunctionAt(size_t pos) const;
};

FileModel BuildFileModel(const SourceFile& file);

// --- shared token utilities ---------------------------------------------

bool IsIdentifierChar(char c);

// Finds `token` at identifier boundaries in `code`, starting at `from`;
// npos when absent. With `require_call`, the match must look like a free
// function call: followed by '(' and not reached via '.', '->', or '::'.
size_t FindTokenFrom(const std::string& code, const std::string& token,
                     bool require_call, size_t from);

// Position just past the parenthesized group opening at `open` (which must
// index a '('), or std::string::npos when unbalanced.
size_t MatchParen(const std::string& code, size_t open);
// Same for a brace group opening at `open` ('{').
size_t MatchBrace(const std::string& code, size_t open);

std::string TrimWhitespace(const std::string& s);

}  // namespace litereconfig

#endif  // TOOLS_LINT_SOURCE_MODEL_H_
