#include "tools/lint/source_model.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace litereconfig {

namespace {

bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

// Index of the last non-whitespace character at or before `i`, or npos.
size_t PrevNonSpace(const std::string& s, size_t i) {
  while (i != std::string::npos && i < s.size() && IsSpaceChar(s[i])) {
    if (i == 0) {
      return std::string::npos;
    }
    --i;
  }
  return i >= s.size() ? std::string::npos : i;
}

size_t NextNonSpace(const std::string& s, size_t i) {
  while (i < s.size() && IsSpaceChar(s[i])) {
    ++i;
  }
  return i < s.size() ? i : std::string::npos;
}

// Start of the identifier ending at `end` (inclusive); `end` itself must be an
// identifier character.
size_t IdentStart(const std::string& s, size_t end) {
  size_t start = end;
  while (start > 0 && IsIdentifierChar(s[start - 1])) {
    --start;
  }
  return start;
}

// Matches the ')' at `close` back to its '('; npos when unbalanced.
size_t MatchParenBackward(const std::string& s, size_t close) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (s[i] == ')') {
      ++depth;
    } else if (s[i] == '(') {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return std::string::npos;
}

size_t MatchBraceBackward(const std::string& s, size_t close) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (s[i] == '}') {
      ++depth;
    } else if (s[i] == '{') {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return std::string::npos;
}

bool IsKeyword(const std::string& word) {
  static const std::set<std::string> kKeywords = {
      "if",     "else",  "for",    "while",   "switch", "do",    "return",
      "sizeof", "new",   "delete", "catch",   "throw",  "case",  "default",
      "static_assert",   "alignof", "decltype", "co_await", "co_return"};
  return kKeywords.count(word) > 0;
}

// Reads a possibly ::-qualified name ending at `end` (an identifier char);
// returns the full text and sets `start` to its first character.
std::string ReadQualifiedNameBackward(const std::string& s, size_t end,
                                      size_t* start) {
  size_t begin = IdentStart(s, end);
  while (begin >= 2 && s[begin - 1] == ':' && s[begin - 2] == ':') {
    size_t before = begin - 2;
    if (before == 0 || !IsIdentifierChar(s[before - 1])) {
      break;
    }
    begin = IdentStart(s, before - 1);
  }
  *start = begin;
  return s.substr(begin, end - begin + 1);
}

}  // namespace

bool IsIdentifierChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

size_t FindTokenFrom(const std::string& code, const std::string& token,
                     bool require_call, size_t from) {
  size_t pos = code.find(token, from);
  while (pos != std::string::npos) {
    char prev = pos == 0 ? ' ' : code[pos - 1];
    size_t end = pos + token.size();
    char next = end < code.size() ? code[end] : ' ';
    bool boundary_ok = !IsIdentifierChar(prev) && !IsIdentifierChar(next);
    if (boundary_ok && require_call) {
      if (prev == '.' || prev == ':' || prev == '>') {
        boundary_ok = false;
      } else {
        size_t paren = code.find_first_not_of(" \t", end);
        boundary_ok = paren != std::string::npos && code[paren] == '(';
      }
    }
    if (boundary_ok) {
      return pos;
    }
    pos = code.find(token, pos + 1);
  }
  return std::string::npos;
}

size_t MatchParen(const std::string& code, size_t open) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') {
      ++depth;
    } else if (code[i] == ')') {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string::npos;
}

size_t MatchBrace(const std::string& code, size_t open) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (code[i] == '{') {
      ++depth;
    } else if (code[i] == '}') {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string::npos;
}

std::string TrimWhitespace(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) {
    return std::string();
  }
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

MaskedSource StripWithMask(const std::string& content) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State state = State::kCode;
  MaskedSource out;
  out.stripped = content;
  out.mask.assign(content.size(), CharClass::kCode);
  std::string raw_delim;
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.stripped[i] = ' ';
          out.mask[i] = CharClass::kComment;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.stripped[i] = ' ';
          out.mask[i] = CharClass::kComment;
        } else if (c == '"' && i > 0 && content[i - 1] == 'R') {
          // Raw string literal: R"delim( ... )delim".
          size_t open = content.find('(', i + 1);
          if (open != std::string::npos) {
            raw_delim = ")";
            raw_delim += content.substr(i + 1, open - i - 1);
            raw_delim += '"';
            state = State::kRaw;
          }
          out.stripped[i] = ' ';
          out.mask[i] = CharClass::kString;
        } else if (c == '"') {
          state = State::kString;
          out.stripped[i] = ' ';
          out.mask[i] = CharClass::kString;
        } else if (c == '\'') {
          state = State::kChar;
          out.stripped[i] = ' ';
          out.mask[i] = CharClass::kString;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out.stripped[i] = ' ';
          out.mask[i] = CharClass::kComment;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out.stripped[i] = ' ';
          out.stripped[i + 1] = ' ';
          out.mask[i] = CharClass::kComment;
          out.mask[i + 1] = CharClass::kComment;
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out.stripped[i] = ' ';
          out.mask[i] = CharClass::kComment;
        } else {
          out.mask[i] = CharClass::kComment;
        }
        break;
      case State::kString:
      case State::kChar: {
        char closer = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out.stripped[i] = ' ';
          out.mask[i] = CharClass::kString;
          if (next != '\0' && next != '\n') {
            out.stripped[i + 1] = ' ';
            out.mask[i + 1] = CharClass::kString;
            ++i;
          }
        } else if (c == closer) {
          out.stripped[i] = ' ';
          out.mask[i] = CharClass::kString;
          state = State::kCode;
        } else if (c != '\n') {
          out.stripped[i] = ' ';
          out.mask[i] = CharClass::kString;
        }
        break;
      }
      case State::kRaw:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t j = 0; j < raw_delim.size(); ++j) {
            out.stripped[i + j] = ' ';
            out.mask[i + j] = CharClass::kString;
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out.stripped[i] = ' ';
          out.mask[i] = CharClass::kString;
        }
        break;
    }
  }
  return out;
}

// --- escapes -------------------------------------------------------------

EscapeRegistry EscapeRegistry::Parse(const std::string& content,
                                     const MaskedSource& masked) {
  EscapeRegistry registry;
  int line = 1;
  size_t line_start = 0;
  for (size_t i = 0; i <= content.size(); ++i) {
    if (i == content.size() || content[i] == '\n') {
      // Scan this line for a comment-resident "detlint:" directive. The
      // directive must START its comment ("// detlint: ..."), so prose that
      // merely quotes the syntax deeper inside a comment is inert.
      size_t found = std::string::npos;
      for (size_t j = line_start; j + 8 <= i; ++j) {
        if (content.compare(j, 8, "detlint:") != 0 ||
            masked.mask[j] != CharClass::kComment) {
          continue;
        }
        size_t k = j;
        while (k > line_start &&
               (content[k - 1] == ' ' || content[k - 1] == '\t')) {
          --k;
        }
        const bool opener =
            k >= 2 && content[k - 1] == '*' && content[k - 2] == '/';
        const bool slashes =
            k >= 2 && content[k - 1] == '/' && content[k - 2] == '/';
        if (!opener && !slashes) {
          continue;  // mid-comment mention, not a directive
        }
        // For "//" the pair must itself open the comment — a "//" inside an
        // already-open comment (e.g. a doc example) has kComment before it.
        if (slashes && k >= 3 &&
            masked.mask[k - 3] == CharClass::kComment) {
          continue;
        }
        found = j;
        break;
      }
      if (found != std::string::npos) {
        std::string rest =
            TrimWhitespace(content.substr(found + 8, i - found - 8));
        Escape escape;
        escape.line = line;
        if (rest.rfind("order-independent", 0) == 0) {
          escape.rules.insert("unordered-iter");
          // order-independent is self-describing; any trailing text is a
          // bonus reason.
          escape.has_reason = true;
        } else if (rest.rfind("stream-stable(", 0) == 0) {
          size_t close = rest.find(')');
          std::string reason = close == std::string::npos
                                   ? std::string()
                                   : rest.substr(14, close - 14);
          escape.rules.insert("rng-conditional-draw");
          escape.has_reason = !TrimWhitespace(reason).empty();
        } else if (rest.rfind("allow(", 0) == 0) {
          size_t close = rest.find(')');
          if (close != std::string::npos) {
            std::string list = rest.substr(6, close - 6);
            std::string rule;
            std::istringstream stream(list);
            while (std::getline(stream, rule, ',')) {
              rule = TrimWhitespace(rule);
              if (!rule.empty()) {
                escape.rules.insert(rule);
              }
            }
            escape.has_reason =
                !TrimWhitespace(rest.substr(close + 1)).empty();
          }
        }
        if (!escape.rules.empty()) {
          size_t index = registry.escapes_.size();
          registry.escapes_.push_back(escape);
          registry.by_line_[line].push_back(index);
          // A directive on a comment-only line also covers the next line.
          bool comment_only = true;
          for (size_t j = line_start; j < i; ++j) {
            if (masked.stripped[j] != ' ' && masked.stripped[j] != '\t' &&
                masked.stripped[j] != '\r') {
              comment_only = false;
              break;
            }
          }
          if (comment_only) {
            registry.by_line_[line + 1].push_back(index);
          }
        }
      }
      ++line;
      line_start = i + 1;
    }
  }
  return registry;
}

std::vector<size_t> EscapeRegistry::ApplicableTo(int line) const {
  auto it = by_line_.find(line);
  return it == by_line_.end() ? std::vector<size_t>() : it->second;
}

bool EscapeRegistry::Allows(int line, const std::string& rule) {
  for (size_t index : ApplicableTo(line)) {
    if (escapes_[index].rules.count(rule) > 0) {
      escapes_[index].used = true;
      return true;
    }
  }
  return false;
}

bool EscapeRegistry::StreamStableAt(int line,
                                    const std::vector<int>& guard_lines) {
  if (Allows(line, "rng-conditional-draw")) {
    return true;
  }
  for (int guard : guard_lines) {
    if (Allows(guard, "rng-conditional-draw")) {
      return true;
    }
  }
  return false;
}

// --- FileModel queries ---------------------------------------------------

int FileModel::LineAt(size_t pos) const {
  const std::string& text = masked.stripped;
  pos = std::min(pos, text.size());
  return 1 + static_cast<int>(std::count(text.begin(),
                                         text.begin() + static_cast<long>(pos),
                                         '\n'));
}

std::vector<int> FileModel::GuardLinesAt(size_t pos,
                                         const Extent& within) const {
  std::vector<int> lines;
  for (const ConditionalExtent& conditional : conditionals) {
    if (conditional.extent.Contains(pos) &&
        conditional.extent.begin >= within.begin &&
        conditional.extent.end <= within.end) {
      lines.push_back(conditional.header_line);
    }
  }
  return lines;
}

bool FileModel::InConditional(size_t pos, const Extent& within) const {
  return !GuardLinesAt(pos, within).empty();
}

const FunctionModel* FileModel::FunctionAt(size_t pos) const {
  const FunctionModel* best = nullptr;
  for (const FunctionModel& function : functions) {
    if (function.body.Contains(pos) &&
        (best == nullptr || function.body.begin > best->body.begin)) {
      best = &function;
    }
  }
  return best;
}

const MemberModel* ClassModel::FindMember(const std::string& member_name) const {
  for (const MemberModel& member : members) {
    if (member.name == member_name) {
      return &member;
    }
  }
  return nullptr;
}

// --- structure scanning --------------------------------------------------

namespace {

void ScanConditionals(FileModel* model) {
  const std::string& s = model->masked.stripped;
  for (const char* keyword : {"if", "switch"}) {
    size_t pos = FindTokenFrom(s, keyword, /*require_call=*/false, 0);
    while (pos != std::string::npos) {
      size_t open = NextNonSpace(s, pos + std::string(keyword).size());
      if (open != std::string::npos && s[open] == '(') {
        size_t after_paren = MatchParen(s, open);
        if (after_paren != std::string::npos) {
          size_t body = NextNonSpace(s, after_paren);
          ConditionalExtent conditional;
          conditional.header_line = model->LineAt(pos);
          if (body != std::string::npos && s[body] == '{') {
            size_t end = MatchBrace(s, body);
            if (end != std::string::npos) {
              conditional.extent = {body + 1, end - 1};
              model->conditionals.push_back(conditional);
            }
          } else if (body != std::string::npos) {
            // Single-statement conditional: guarded until the next ';' at
            // paren depth zero.
            int depth = 0;
            for (size_t i = body; i < s.size(); ++i) {
              if (s[i] == '(') {
                ++depth;
              } else if (s[i] == ')') {
                --depth;
              } else if (s[i] == ';' && depth == 0) {
                conditional.extent = {body, i};
                model->conditionals.push_back(conditional);
                break;
              }
            }
          }
        }
      }
      pos = FindTokenFrom(s, keyword, /*require_call=*/false, pos + 1);
    }
  }
  size_t pos = FindTokenFrom(s, "else", /*require_call=*/false, 0);
  while (pos != std::string::npos) {
    size_t body = NextNonSpace(s, pos + 4);
    if (body != std::string::npos) {
      if (s.compare(body, 2, "if") == 0 &&
          (body + 2 >= s.size() || !IsIdentifierChar(s[body + 2]))) {
        // "else if" — the `if` scan already covers it.
      } else if (s[body] == '{') {
        size_t end = MatchBrace(s, body);
        if (end != std::string::npos) {
          model->conditionals.push_back(
              {{body + 1, end - 1}, model->LineAt(pos)});
        }
      } else {
        size_t semi = s.find(';', body);
        if (semi != std::string::npos) {
          model->conditionals.push_back({{body, semi}, model->LineAt(pos)});
        }
      }
    }
    pos = FindTokenFrom(s, "else", /*require_call=*/false, pos + 1);
  }
}

// Walks backward from a member-initializer group to the constructor's
// parameter list: `Ctor(args) : a_(x), b_{y} <- start here`. Returns the
// position of the ')' closing the parameter list, or npos.
size_t SkipCtorInitBackward(const std::string& s, size_t item_close) {
  size_t i = item_close;
  for (;;) {
    // `i` indexes the ')' or '}' closing one initializer group.
    size_t open = s[i] == ')' ? MatchParenBackward(s, i)
                              : MatchBraceBackward(s, i);
    if (open == std::string::npos || open == 0) {
      return std::string::npos;
    }
    size_t name_end = PrevNonSpace(s, open - 1);
    if (name_end == std::string::npos || !IsIdentifierChar(s[name_end])) {
      return std::string::npos;
    }
    size_t name_start = IdentStart(s, name_end);
    if (name_start == 0) {
      return std::string::npos;
    }
    size_t sep = PrevNonSpace(s, name_start - 1);
    if (sep == std::string::npos) {
      return std::string::npos;
    }
    if (s[sep] == ',') {
      size_t prev_close = PrevNonSpace(s, sep - 1);
      if (prev_close == std::string::npos ||
          (s[prev_close] != ')' && s[prev_close] != '}')) {
        return std::string::npos;
      }
      i = prev_close;
      continue;
    }
    if (s[sep] == ':' && (sep == 0 || s[sep - 1] != ':')) {
      size_t params_close = PrevNonSpace(s, sep - 1);
      if (params_close != std::string::npos && s[params_close] == ')') {
        return params_close;
      }
    }
    return std::string::npos;
  }
}

void ScanFunctions(FileModel* model) {
  const std::string& s = model->masked.stripped;
  for (size_t b = s.find('{'); b != std::string::npos; b = s.find('{', b + 1)) {
    size_t i = b == 0 ? std::string::npos : PrevNonSpace(s, b - 1);
    std::vector<std::string> acquires;
    std::vector<std::string> requires_held;
    bool is_function = false;
    std::string name;
    std::string params;
    while (i != std::string::npos) {
      if (s[i] == ')') {
        size_t open = MatchParenBackward(s, i);
        if (open == std::string::npos || open == 0) {
          break;
        }
        size_t id_end = PrevNonSpace(s, open - 1);
        if (id_end == std::string::npos || !IsIdentifierChar(s[id_end])) {
          break;  // lambda or cast — not a named function definition
        }
        size_t id_start;
        std::string id = ReadQualifiedNameBackward(s, id_end, &id_start);
        if (id.rfind("LR_", 0) == 0) {
          // Thread-safety annotation on the definition; record and continue.
          std::string args = TrimWhitespace(s.substr(open + 1, i - open - 1));
          if (id == "LR_ACQUIRE" && !args.empty()) {
            acquires.push_back(args);
          } else if (id == "LR_REQUIRES" && !args.empty()) {
            requires_held.push_back(args);
          }
          i = id_start == 0 ? std::string::npos : PrevNonSpace(s, id_start - 1);
          continue;
        }
        if (IsKeyword(id)) {
          break;  // control flow (`if (...) {`), not a function
        }
        // A `Ctor(...) : member_(x), other_{y} {` initializer list: the group
        // we just matched is the last initializer, not the parameter list.
        size_t before = id_start == 0 ? std::string::npos
                                      : PrevNonSpace(s, id_start - 1);
        if (before != std::string::npos &&
            (s[before] == ',' ||
             (s[before] == ':' && (before == 0 || s[before - 1] != ':')))) {
          size_t params_close = SkipCtorInitBackward(s, i);
          if (params_close == std::string::npos) {
            break;
          }
          size_t params_open = MatchParenBackward(s, params_close);
          if (params_open == std::string::npos || params_open == 0) {
            break;
          }
          size_t ctor_end = PrevNonSpace(s, params_open - 1);
          if (ctor_end == std::string::npos || !IsIdentifierChar(s[ctor_end])) {
            break;
          }
          size_t ctor_start;
          name = ReadQualifiedNameBackward(s, ctor_end, &ctor_start);
          params = s.substr(params_open + 1, params_close - params_open - 1);
          is_function = !IsKeyword(name);
          break;
        }
        name = id;
        params = s.substr(open + 1, i - open - 1);
        is_function = true;
        break;
      }
      if (IsIdentifierChar(s[i])) {
        size_t id_start;
        std::string id = ReadQualifiedNameBackward(s, i, &id_start);
        static const std::set<std::string> kQualifiers = {
            "const", "noexcept", "override", "final", "try", "mutable"};
        if (kQualifiers.count(id) > 0) {
          i = id_start == 0 ? std::string::npos : PrevNonSpace(s, id_start - 1);
          continue;
        }
        break;  // class/namespace/init-list brace
      }
      if (s[i] == '>' && i > 0 && s[i - 1] == '-') {
        break;  // trailing-return arrow handled below via the '>' search
      }
      if (s[i] == '>') {
        // Possibly a trailing return type: `auto F(...) -> std::vector<T> {`.
        size_t arrow = s.rfind("->", i);
        if (arrow == std::string::npos || arrow == 0) {
          break;
        }
        i = PrevNonSpace(s, arrow - 1);
        continue;
      }
      break;
    }
    if (!is_function || name.empty()) {
      continue;
    }
    size_t end = MatchBrace(s, b);
    if (end == std::string::npos) {
      continue;
    }
    FunctionModel function;
    function.name = name;
    size_t sep = name.rfind("::");
    if (sep != std::string::npos) {
      function.class_name = name.substr(0, sep);
      function.bare_name = name.substr(sep + 2);
    } else {
      function.bare_name = name;
    }
    function.params = params;
    function.body = {b + 1, end - 1};
    function.line = model->LineAt(b);
    function.acquires = acquires;
    function.requires_ = requires_held;
    model->functions.push_back(function);
  }
}

// Removes `LR_Ident(...)` attribute groups from a statement.
std::string RemoveAnnotations(const std::string& statement) {
  std::string out = statement;
  size_t pos = out.find("LR_");
  while (pos != std::string::npos) {
    if ((pos == 0 || !IsIdentifierChar(out[pos - 1]))) {
      size_t id_end = pos;
      while (id_end < out.size() && IsIdentifierChar(out[id_end])) {
        ++id_end;
      }
      size_t open = NextNonSpace(out, id_end);
      size_t erase_end = id_end;
      if (open != std::string::npos && out[open] == '(') {
        size_t close = MatchParen(out, open);
        if (close != std::string::npos) {
          erase_end = close;
        }
      }
      out.erase(pos, erase_end - pos);
    } else {
      pos += 3;
    }
    pos = out.find("LR_", pos);
  }
  return out;
}

std::vector<std::string> SplitIdentifiers(const std::string& text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    if (IsIdentifierChar(text[i]) &&
        std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      size_t start = i;
      while (i < text.size() && IsIdentifierChar(text[i])) {
        ++i;
      }
      out.push_back(text.substr(start, i - start));
    } else {
      ++i;
    }
  }
  return out;
}

// True when `text` contains `c` outside any <...> template-argument nesting.
bool ContainsOutsideAngles(const std::string& text, char c) {
  int angle = 0;
  for (char ch : text) {
    if (ch == '<') {
      ++angle;
    } else if (ch == '>') {
      angle = std::max(0, angle - 1);
    } else if (ch == c && angle == 0) {
      return true;
    }
  }
  return false;
}

void ParseClassMembers(FileModel* model, ClassModel* klass) {
  const std::string& s = model->masked.stripped;
  size_t pos = klass->body.begin;
  size_t statement_start = pos;
  bool statement_has_brace_init = false;
  while (pos < klass->body.end) {
    char c = s[pos];
    if (c == '{') {
      size_t end = MatchBrace(s, pos);
      if (end == std::string::npos || end > klass->body.end) {
        return;
      }
      size_t next = NextNonSpace(s, end);
      if (next != std::string::npos && next < klass->body.end &&
          s[next] == ';') {
        // Brace-initialized member (`std::atomic<int> x{0};`) or a nested
        // type definition; the statement classifier below distinguishes.
        statement_has_brace_init = true;
        pos = end;
        continue;
      }
      // Function body or similar — discard the statement.
      statement_start = end;
      statement_has_brace_init = false;
      pos = end;
      continue;
    }
    if (c == ':' && (pos + 1 >= s.size() || s[pos + 1] != ':') &&
        (pos == 0 || s[pos - 1] != ':')) {
      std::string label =
          TrimWhitespace(s.substr(statement_start, pos - statement_start));
      if (label == "public" || label == "private" || label == "protected") {
        statement_start = pos + 1;
        statement_has_brace_init = false;
      }
      ++pos;
      continue;
    }
    if (c != ';') {
      ++pos;
      continue;
    }
    std::string statement =
        s.substr(statement_start, pos - statement_start);
    size_t statement_pos = statement_start;
    statement_start = pos + 1;
    bool had_brace_init = statement_has_brace_init;
    statement_has_brace_init = false;
    ++pos;

    std::string trimmed = TrimWhitespace(statement);
    if (trimmed.empty()) {
      continue;
    }
    MemberModel member;
    member.guarded = trimmed.find("LR_GUARDED_BY(") != std::string::npos ||
                     trimmed.find("LR_PT_GUARDED_BY(") != std::string::npos;
    if (member.guarded) {
      size_t g = trimmed.find("GUARDED_BY(");
      size_t open = trimmed.find('(', g);
      size_t close = MatchParen(trimmed, open);
      if (close != std::string::npos) {
        member.guarded_by =
            TrimWhitespace(trimmed.substr(open + 1, close - open - 2));
      }
    }
    std::string cleaned = TrimWhitespace(RemoveAnnotations(trimmed));
    if (cleaned.empty()) {
      continue;
    }
    std::vector<std::string> words = SplitIdentifiers(cleaned);
    if (words.empty()) {
      continue;
    }
    static const std::set<std::string> kNotMembers = {
        "using", "typedef", "friend", "template", "static_assert", "class",
        "struct", "enum", "union", "operator", "explicit", "virtual",
        "public", "private", "protected", "return"};
    if (kNotMembers.count(words.front()) > 0) {
      continue;
    }
    // Default-member-initializer text can contain calls; only the declarator
    // part decides whether this is a function declaration.
    size_t init_eq = std::string::npos;
    {
      int angle = 0;
      for (size_t i = 0; i < cleaned.size(); ++i) {
        char ch = cleaned[i];
        if (ch == '<') {
          ++angle;
        } else if (ch == '>') {
          angle = std::max(0, angle - 1);
        } else if (ch == '=' && angle == 0 &&
                   (i + 1 >= cleaned.size() || cleaned[i + 1] != '=') &&
                   (i == 0 || (cleaned[i - 1] != '=' && cleaned[i - 1] != '!' &&
                               cleaned[i - 1] != '<' && cleaned[i - 1] != '>'))) {
          init_eq = i;
          break;
        }
      }
    }
    std::string declarator =
        init_eq == std::string::npos ? cleaned : cleaned.substr(0, init_eq);
    if (ContainsOutsideAngles(declarator, '(')) {
      continue;  // function declaration
    }
    member.decl = cleaned;
    member.is_static = std::find(words.begin(), words.end(), "static") !=
                       words.end();
    member.is_const =
        std::find(words.begin(), words.end(), "const") != words.end() ||
        std::find(words.begin(), words.end(), "constexpr") != words.end();
    member.is_reference = ContainsOutsideAngles(declarator, '&');
    member.is_atomic = declarator.find("atomic") != std::string::npos;
    std::string first_type = words.front();
    if (first_type == "mutable" && words.size() > 1) {
      first_type = words[1];
    }
    member.is_mutex = first_type == "Mutex";
    member.is_condvar = first_type == "CondVar";
    member.has_initializer = init_eq != std::string::npos || had_brace_init;
    // Name: the last identifier of the declarator (before any '[').
    std::string name_part = declarator;
    size_t bracket = name_part.find('[');
    if (bracket != std::string::npos) {
      name_part = name_part.substr(0, bracket);
    }
    size_t brace = name_part.find('{');
    if (brace != std::string::npos) {
      name_part = name_part.substr(0, brace);
    }
    std::vector<std::string> declarator_words = SplitIdentifiers(name_part);
    if (declarator_words.empty()) {
      continue;
    }
    member.name = declarator_words.back();
    if (member.name == first_type || member.name == "mutable" ||
        member.name == "static") {
      continue;  // e.g. `struct Foo;` nested forward declaration
    }
    size_t name_in_stmt = statement.rfind(member.name);
    member.line = model->LineAt(
        statement_pos + (name_in_stmt == std::string::npos ? 0 : name_in_stmt));
    klass->owns_mutex = klass->owns_mutex || member.is_mutex;
    klass->members.push_back(member);
  }
}

void ScanClasses(FileModel* model) {
  const std::string& s = model->masked.stripped;
  for (const char* keyword : {"class", "struct"}) {
    size_t pos = FindTokenFrom(s, keyword, /*require_call=*/false, 0);
    while (pos != std::string::npos) {
      size_t scan_from = pos + std::string(keyword).size();
      // `enum class` / `enum struct` are enumerations, not classes.
      size_t prev = pos == 0 ? std::string::npos : PrevNonSpace(s, pos - 1);
      bool is_enum = false;
      if (prev != std::string::npos && IsIdentifierChar(s[prev])) {
        size_t prev_start;
        is_enum = ReadQualifiedNameBackward(s, prev, &prev_start) == "enum";
      }
      if (!is_enum) {
        // Forward-scan to '{' (definition), ';' (fwd decl), or a token that
        // rules a definition out.
        std::string name;
        size_t i = scan_from;
        bool ok = true;
        while (i < s.size()) {
          char c = s[i];
          if (c == '{' || c == ';') {
            break;
          }
          if (c == '>' || c == ')' || c == '=' || c == ',') {
            ok = false;  // template parameter list, function param, etc.
            break;
          }
          if (c == '(') {
            // An LR_*(...) capability attribute between keyword and name.
            size_t close = MatchParen(s, i);
            if (close == std::string::npos) {
              ok = false;
              break;
            }
            i = close;
            continue;
          }
          if (c == ':' && (i + 1 < s.size() && s[i + 1] == ':')) {
            i += 2;
            name += "::";
            continue;
          }
          if (c == ':') {
            break;  // base clause; name is complete
          }
          if (c == '<') {
            ok = false;  // template specialization — out of scope
            break;
          }
          if (IsIdentifierChar(c)) {
            size_t start = i;
            while (i < s.size() && IsIdentifierChar(s[i])) {
              ++i;
            }
            std::string word = s.substr(start, i - start);
            if (word == "final") {
              continue;
            }
            if (word.rfind("LR_", 0) == 0) {
              continue;  // annotation macro without parens
            }
            if (!name.empty() && name.back() != ':') {
              name = word;  // `struct alignas(x) Foo` style — keep the last
            } else {
              name += word;
            }
            continue;
          }
          ++i;
        }
        if (ok && i < s.size() && !name.empty() && name.back() != ':') {
          size_t brace = s.find_first_of("{;", i);
          if (brace != std::string::npos && s[brace] == '{') {
            size_t end = MatchBrace(s, brace);
            if (end != std::string::npos) {
              ClassModel klass;
              klass.name = name;
              klass.body = {brace + 1, end - 1};
              klass.line = model->LineAt(pos);
              ParseClassMembers(model, &klass);
              model->classes.push_back(klass);
            }
          }
        }
      }
      pos = FindTokenFrom(s, keyword, /*require_call=*/false, pos + 1);
    }
  }
  // Attribute in-class function definitions to their enclosing class.
  for (FunctionModel& function : model->functions) {
    if (!function.class_name.empty()) {
      continue;
    }
    const ClassModel* innermost = nullptr;
    for (const ClassModel& klass : model->classes) {
      if (klass.body.Contains(function.body.begin) &&
          (innermost == nullptr ||
           klass.body.begin > innermost->body.begin)) {
        innermost = &klass;
      }
    }
    if (innermost != nullptr) {
      function.class_name = innermost->name;
    }
  }
}

std::vector<std::string> SplitIntoLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(text);
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  return lines;
}

}  // namespace

FileModel BuildFileModel(const SourceFile& file) {
  FileModel model;
  model.file = &file;
  model.masked = StripWithMask(file.content);
  model.raw_lines = SplitIntoLines(file.content);
  model.code_lines = SplitIntoLines(model.masked.stripped);
  model.code_lines.resize(model.raw_lines.size());
  model.escapes = EscapeRegistry::Parse(file.content, model.masked);
  ScanConditionals(&model);
  ScanFunctions(&model);
  ScanClasses(&model);
  return model;
}

}  // namespace litereconfig
