#include "tools/lint/layer_pass.h"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>
#include <tuple>

namespace litereconfig {

namespace {

// Project-rooted quoted include target of a raw line, or empty.
std::string QuotedInclude(const std::string& raw_line) {
  size_t i = raw_line.find_first_not_of(" \t");
  if (i == std::string::npos || raw_line.compare(i, 8, "#include") != 0) {
    return std::string();
  }
  size_t open = raw_line.find('"', i + 8);
  if (open == std::string::npos) {
    return std::string();
  }
  size_t close = raw_line.find('"', open + 1);
  if (close == std::string::npos) {
    return std::string();
  }
  return raw_line.substr(open + 1, close - open - 1);
}

bool ValidModuleName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (char c : name) {
    if (!IsIdentifierChar(c) && c != '-') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string ModuleOf(const std::string& path) {
  size_t slash = path.find('/');
  if (slash == std::string::npos) {
    return std::string();  // top-level file, not part of any module
  }
  std::string first = path.substr(0, slash);
  if (first != "src") {
    return first;
  }
  size_t second = path.find('/', slash + 1);
  if (second == std::string::npos) {
    return first;  // a file directly under src/ — declared as module "src"
  }
  return path.substr(slash + 1, second - slash - 1);
}

bool ParseLayers(const std::string& text, LayerSpec* spec, std::string* error) {
  *spec = LayerSpec();
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  int level = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream words(line);
    std::string module;
    bool any = false;
    while (words >> module) {
      if (!ValidModuleName(module)) {
        *error = "layers.txt:" + std::to_string(line_number) +
                 ": invalid module name '" + module + "'";
        return false;
      }
      if (spec->level.count(module) > 0) {
        *error = "layers.txt:" + std::to_string(line_number) +
                 ": module '" + module + "' declared twice";
        return false;
      }
      spec->level[module] = level;
      spec->decl_line[module] = line_number;
      any = true;
    }
    if (any) {
      ++level;
    }
  }
  spec->layer_count = level;
  return true;
}

LayerPassReport RunLayerPass(std::vector<FileModel>& models,
                             const LayerSpec& spec,
                             const std::string& layers_path) {
  LayerPassReport report;

  std::set<std::string> scanned_paths;
  std::set<std::string> tree_modules;
  for (const FileModel& model : models) {
    scanned_paths.insert(model.file->path);
    std::string module = ModuleOf(model.file->path);
    if (!module.empty()) {
      tree_modules.insert(module);
    }
  }

  // Spec entries that name no directory in the scanned tree.
  for (const auto& entry : spec.level) {
    if (tree_modules.count(entry.first) == 0) {
      report.violations.push_back(
          {layers_path, spec.decl_line.at(entry.first), "layer-unknown",
           "layers.txt names '" + entry.first +
               "', which matches no scanned directory; fix the typo or "
               "remove the stale entry"});
    }
  }
  // Tree modules the spec forgot.
  for (const std::string& module : tree_modules) {
    if (spec.level.count(module) == 0) {
      report.violations.push_back(
          {layers_path, 1, "layer-unknown",
           "module '" + module +
               "' exists in the tree but is not declared in layers.txt; "
               "add it to the layer it belongs to"});
    }
  }

  // Include edges + upward-include check.
  std::map<std::string, std::vector<std::pair<std::string, int>>> includes;
  for (FileModel& model : models) {
    const std::string& path = model.file->path;
    std::string module = ModuleOf(path);
    int from_level =
        spec.level.count(module) > 0 ? spec.level.at(module) : -1;
    for (size_t i = 0; i < model.raw_lines.size(); ++i) {
      std::string target = QuotedInclude(model.raw_lines[i]);
      if (target.empty()) {
        continue;
      }
      int line = static_cast<int>(i + 1);
      ++report.include_edges;
      if (scanned_paths.count(target) > 0) {
        includes[path].emplace_back(target, line);
      }
      std::string to_module = ModuleOf(target);
      if (from_level < 0 || to_module.empty() ||
          spec.level.count(to_module) == 0) {
        continue;  // unknown modules are already reported above
      }
      int to_level = spec.level.at(to_module);
      if (to_level > from_level &&
          !model.escapes.Allows(line, "layer-order")) {
        report.violations.push_back(
            {path, line, "layer-order",
             "upward include: '" + module + "' (layer " +
                 std::to_string(from_level) + ") must not include \"" +
                 target + "\" from '" + to_module + "' (layer " +
                 std::to_string(to_level) +
                 "); dependencies point downward in layers.txt"});
      }
    }
  }

  // File-level include cycle detection (DFS, deterministic order).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::vector<std::string> cycle;
  std::function<bool(const std::string&)> visit =
      [&](const std::string& node) -> bool {
    color[node] = 1;
    stack.push_back(node);
    auto it = includes.find(node);
    if (it != includes.end()) {
      for (const auto& edge : it->second) {
        int c = color.count(edge.first) ? color[edge.first] : 0;
        if (c == 1) {
          auto from = std::find(stack.begin(), stack.end(), edge.first);
          cycle.assign(from, stack.end());
          cycle.push_back(edge.first);
          return true;
        }
        if (c == 0 && visit(edge.first)) {
          return true;
        }
      }
    }
    stack.pop_back();
    color[node] = 2;
    return false;
  };
  for (const std::string& path : scanned_paths) {
    if ((color.count(path) ? color[path] : 0) == 0 && visit(path)) {
      break;
    }
  }
  if (!cycle.empty()) {
    report.cycle = true;
    std::string chain;
    for (size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) {
        chain += " -> ";
      }
      chain += cycle[i];
    }
    report.violations.push_back(
        {cycle.front(), 1, "include-cycle",
         "include cycle: " + chain + "; break the cycle with a forward "
         "declaration or by moving the shared piece down a layer"});
  }

  std::sort(report.violations.begin(), report.violations.end(),
            [](const LintViolation& a, const LintViolation& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

}  // namespace litereconfig
