// RNG-stream discipline: the static side of the draw-count contract.
//
// Every Pcg32 stream in the tree is either (a) a short-lived local seeded by
// hash-keyed entity ids — its draw count is private to one scope — or (b) a
// long-lived stream (a class member, or a caller-owned stream threaded through
// a `Pcg32&` parameter) whose draw count is part of the cross-call contract:
// any schedule- or state-dependent variation in how many draws it performs
// perturbs every later consumer of the same stream. This pass checks the
// long-lived streams:
//
//   rng-parallel-capture   a Pcg32 object declared outside a ParallelFor /
//                          ParallelMap / Defer extent is referenced inside it.
//                          Which thread draws first is a race; parallel bodies
//                          must seed their own substream from entity ids.
//   rng-conditional-draw   a member or reference-parameter stream is used
//                          inside an `if`/`else`/`switch` extent. The draw
//                          count then depends on runtime state; the site must
//                          carry `// detlint: stream-stable(reason)` (on the
//                          use line, the preceding comment line, or the
//                          guarding `if` header) arguing why the condition is
//                          a pure function of (seeds, config).
//   rng-unseeded-member    a Pcg32 class member with no explicit seed
//                          expression — neither a brace-or-equals initializer
//                          nor a constructor-initializer in the class's own
//                          or sibling translation unit.
#ifndef TOOLS_LINT_RNG_PASS_H_
#define TOOLS_LINT_RNG_PASS_H_

#include <set>
#include <string>
#include <vector>

#include "tools/lint/detlint_lib.h"
#include "tools/lint/source_model.h"

namespace litereconfig {

// Project-wide facts the per-file scan needs: member streams are declared in
// headers but drawn from in the paired .cc.
struct RngPassContext {
  std::set<std::string> member_streams;  // names of Pcg32-typed data members
};

RngPassContext BuildRngPassContext(const std::vector<FileModel>& models);

// Runs all three rules over one file. `all_models` is consulted for sibling
// translation units (constructor-initializer evidence for rng-unseeded-member).
// Marks matched escapes used in model.escapes.
std::vector<LintViolation> RunRngPass(FileModel& model,
                                      const RngPassContext& context,
                                      const std::vector<FileModel>& all_models);

}  // namespace litereconfig

#endif  // TOOLS_LINT_RNG_PASS_H_
