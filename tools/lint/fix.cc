#include "tools/lint/fix.h"

#include <sstream>
#include <vector>

#include "tools/lint/detlint_lib.h"

namespace litereconfig {

namespace {

std::string RTrim(const std::string& s) {
  size_t i = s.find_last_not_of(" \t\r");
  return i == std::string::npos ? std::string() : s.substr(0, i + 1);
}

std::string LTrim(const std::string& s) {
  size_t i = s.find_first_not_of(" \t");
  return i == std::string::npos ? std::string() : s.substr(i);
}

// Lexically normalizes "a/b/../c" and "./c" segments.
std::string NormalizePath(const std::string& path) {
  std::vector<std::string> parts;
  std::string segment;
  std::istringstream stream(path);
  while (std::getline(stream, segment, '/')) {
    if (segment.empty() || segment == ".") {
      continue;
    }
    if (segment == "..") {
      if (parts.empty()) {
        return std::string();  // escapes the repo root
      }
      parts.pop_back();
      continue;
    }
    parts.push_back(segment);
  }
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += '/';
    }
    out += parts[i];
  }
  return out;
}

std::string DirName(const std::string& path) {
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

bool IsRooted(const std::string& target) {
  for (const char* prefix :
       {"src/", "bench/", "tests/", "tools/", "examples/"}) {
    if (target.rfind(prefix, 0) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

FixResult FixFileContent(const std::string& repo_relative_path,
                         const std::string& content,
                         const std::set<std::string>& known_files) {
  FixResult result;
  std::vector<std::string> lines;
  {
    std::string line;
    std::istringstream stream(content);
    while (std::getline(stream, line)) {
      lines.push_back(line);
    }
  }
  const bool ends_with_newline =
      !content.empty() && content.back() == '\n';

  auto edit = [&](size_t index, const std::string& after) {
    result.edits.push_back(
        {static_cast<int>(index + 1), lines[index], after});
    lines[index] = after;
    result.changed = true;
  };

  // --- header-guard fixes (.h only) ---
  const bool is_header =
      repo_relative_path.size() >= 2 &&
      repo_relative_path.compare(repo_relative_path.size() - 2, 2, ".h") == 0;
  if (is_header) {
    const std::string expected = ExpectedHeaderGuard(repo_relative_path);
    std::string old_guard;
    size_t ifndef_index = lines.size();
    for (size_t i = 0; i < lines.size(); ++i) {
      std::string trimmed = LTrim(lines[i]);
      if (trimmed.rfind("#ifndef", 0) == 0) {
        std::istringstream words(trimmed);
        std::string directive;
        words >> directive >> old_guard;
        ifndef_index = i;
        break;
      }
    }
    if (ifndef_index < lines.size() && !old_guard.empty()) {
      if (old_guard != expected) {
        edit(ifndef_index, "#ifndef " + expected);
        if (ifndef_index + 1 < lines.size() &&
            RTrim(lines[ifndef_index + 1]) == "#define " + old_guard) {
          edit(ifndef_index + 1, "#define " + expected);
        }
      }
      // The trailer on the LAST #endif must be exact.
      for (size_t i = lines.size(); i-- > 0;) {
        if (LTrim(lines[i]).rfind("#endif", 0) == 0) {
          const std::string want = "#endif  // " + expected;
          if (RTrim(lines[i]) != want) {
            edit(i, want);
          }
          break;
        }
      }
    }
  }

  // --- include-path rewrites ---
  const std::string dir = DirName(repo_relative_path);
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string trimmed = LTrim(lines[i]);
    if (trimmed.rfind("#include", 0) != 0) {
      continue;
    }
    size_t open = lines[i].find('"');
    if (open == std::string::npos) {
      continue;
    }
    size_t close = lines[i].find('"', open + 1);
    if (close == std::string::npos) {
      continue;
    }
    std::string target = lines[i].substr(open + 1, close - open - 1);
    if (IsRooted(target)) {
      continue;
    }
    std::string resolved = NormalizePath(dir + "/" + target);
    if (resolved.empty() || known_files.count(resolved) == 0) {
      continue;  // not resolvable against the scan set; leave it to a human
    }
    edit(i, lines[i].substr(0, open + 1) + resolved + lines[i].substr(close));
  }

  std::string rebuilt;
  for (size_t i = 0; i < lines.size(); ++i) {
    rebuilt += lines[i];
    if (i + 1 < lines.size() || ends_with_newline) {
      rebuilt += '\n';
    }
  }
  result.content = std::move(rebuilt);
  return result;
}

}  // namespace litereconfig
