// Lock-order and annotation-coverage analysis over the annotated Mutex
// wrappers (src/util/mutex.h).
//
// Acquisition sites are MutexLock declarations (scoped to their enclosing
// brace block), manual `.Lock()` / `->Lock()` calls (held to the matching
// `.Unlock()` or function end), and LR_ACQUIRE(mu) annotations on function
// definitions (held for the whole body). From those the pass builds:
//
//   lock-cycle            the inter-procedural acquisition-order graph: an
//                         edge A -> B whenever B is acquired (directly, or
//                         inside a callee per a call-graph fixpoint) while A
//                         is held. A cycle is a potential deadlock. Lexical
//                         nesting inside a lambda body does NOT count as
//                         "while held" — the lambda runs later, on another
//                         thread's schedule.
//   guarded-by-coverage   a class that owns a Mutex must annotate every
//                         mutable data member with LR_GUARDED_BY. Members
//                         that synchronize themselves or are frozen at
//                         construction are exempt: const, references,
//                         std::atomic, Mutex/CondVar themselves, statics
//                         (owned by the mutable-global rule). Set-once-
//                         before-sharing members take
//                         '// detlint: allow(guarded-by-coverage) reason'.
//
// Mutex identity is syntactic: a bare member name is qualified by the
// enclosing class ("ThreadPool::mu_"); an object-qualified expression keeps
// its object ("job.mu"). Distinct spellings of one mutex under-merge, which
// can miss an edge but never fabricates one. src/util/mutex.h itself is the
// primitive layer and is excluded from acquisition scanning.
#ifndef TOOLS_LINT_LOCK_PASS_H_
#define TOOLS_LINT_LOCK_PASS_H_

#include <string>
#include <vector>

#include "tools/lint/detlint_lib.h"
#include "tools/lint/source_model.h"

namespace litereconfig {

struct LockPassReport {
  std::vector<LintViolation> violations;
  int mutexes = 0;  // nodes in the acquisition-order graph
  int edges = 0;
  bool cycle = false;
};

// Runs both analyses over the whole project. Marks matched escapes used.
LockPassReport RunLockPass(std::vector<FileModel>& models);

}  // namespace litereconfig

#endif  // TOOLS_LINT_LOCK_PASS_H_
