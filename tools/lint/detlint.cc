// detlint — the determinism & concurrency analyzer (see detlint_lib.h for the
// rule catalogue). Exits nonzero when any violation is found, printing each as
// "file:line: rule: message".
//
//   usage: detlint [--root DIR] [--pass LIST] [--json[=FILE]]
//                  [--changed BASE] [--fix [--dry-run]] [subdir...]
//
//   --pass LIST   comma list of passes to run: legacy, rng, lock, layer, all
//                 (default all). Escape hygiene (unused-escape/escape-reason)
//                 only runs under --pass=all.
//   --json[=FILE] additionally emit the findings as a JSON array (to stdout,
//                 or to FILE) for the CI artifact.
//   --changed B   report only violations in files changed vs. git base B
//                 (analysis still runs over the whole tree so inter-file
//                 passes stay sound; only the report is filtered).
//   --fix         apply mechanical fixes (header guards, repo-rooted include
//                 rewrites) in place; with --dry-run, print the would-be
//                 edits as a diff and change nothing. Exits 1 if anything
//                 changed (or would change).
//
// With no subdirs, scans src/ tools/ bench/ tests/ examples/ under the root.
// Registered as ctest targets over the real tree, and run by the CI lint job.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/detlint_lib.h"
#include "tools/lint/fix.h"

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToJson(const std::vector<litereconfig::LintViolation>& violations) {
  std::ostringstream out;
  out << "[\n";
  for (size_t i = 0; i < violations.size(); ++i) {
    const litereconfig::LintViolation& v = violations[i];
    out << "  {\"file\": \"" << JsonEscape(v.file) << "\", \"line\": " << v.line
        << ", \"rule\": \"" << JsonEscape(v.rule) << "\", \"message\": \""
        << JsonEscape(v.message) << "\"}";
    if (i + 1 < violations.size()) {
      out << ",";
    }
    out << "\n";
  }
  out << "]\n";
  return out.str();
}

// Repo-relative paths changed vs. `base`, via git. Returns false if git is
// unavailable or the command fails (caller then reports everything).
bool ChangedFiles(const std::string& root, const std::string& base,
                  std::set<std::string>* out) {
  std::string command = "git -C '" + root + "' diff --name-only '" + base +
                        "' -- 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    return false;
  }
  char buffer[4096];
  std::string text;
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    text += buffer;
  }
  int status = pclose(pipe);
  if (status != 0) {
    return false;
  }
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) {
      out->insert(line);
    }
  }
  return true;
}

int RunFix(const std::string& root, const std::vector<std::string>& subdirs,
           bool dry_run) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const std::string& subdir : subdirs) {
    fs::path base = fs::path(root) / subdir;
    if (!fs::exists(base)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc") {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::set<std::string> known_files;
  for (const fs::path& path : paths) {
    known_files.insert(fs::relative(path, root).generic_string());
  }
  int changed_files = 0;
  int total_edits = 0;
  for (const fs::path& path : paths) {
    std::string rel = fs::relative(path, root).generic_string();
    std::string content;
    {
      std::ifstream stream(path);
      std::ostringstream buffer;
      buffer << stream.rdbuf();
      content = buffer.str();
    }
    litereconfig::FixResult result =
        litereconfig::FixFileContent(rel, content, known_files);
    if (!result.changed) {
      continue;
    }
    ++changed_files;
    total_edits += static_cast<int>(result.edits.size());
    for (const litereconfig::FixEdit& edit : result.edits) {
      std::cout << rel << ":" << edit.line << ":\n"
                << "  - " << edit.before << "\n"
                << "  + " << edit.after << "\n";
    }
    if (!dry_run) {
      std::ofstream stream(path, std::ios::trunc);
      stream << result.content;
    }
  }
  std::cerr << "detlint --fix: " << total_edits << " edit"
            << (total_edits == 1 ? "" : "s") << " in " << changed_files
            << " file" << (changed_files == 1 ? "" : "s")
            << (dry_run ? " (dry run, nothing written)" : "") << "\n";
  return changed_files > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> subdirs;
  std::string pass_list = "all";
  bool json = false;
  std::string json_file;
  std::string changed_base;
  bool fix = false;
  bool dry_run = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: detlint [--root DIR] [--pass LIST] [--json[=FILE]]\n"
             "               [--changed BASE] [--fix [--dry-run]] [subdir...]\n"
             "Multi-pass determinism analyzer: legacy token rules, RNG-stream\n"
             "discipline, lock-order graph, include-graph layering.\n";
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--pass=", 0) == 0) {
      pass_list = arg.substr(7);
    } else if (arg == "--pass" && i + 1 < argc) {
      pass_list = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_file = arg.substr(7);
    } else if (arg.rfind("--changed=", 0) == 0) {
      changed_base = arg.substr(10);
    } else if (arg == "--changed" && i + 1 < argc) {
      changed_base = argv[++i];
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown flag " << arg << " (see --help)\n";
      return 2;
    } else {
      subdirs.push_back(arg);
    }
  }
  if (subdirs.empty()) {
    subdirs = {"src", "tools", "bench", "tests", "examples"};
  }

  if (fix) {
    return RunFix(root, subdirs, dry_run);
  }

  litereconfig::ProjectOptions options;
  options.legacy = options.rng = options.lock = options.layer = false;
  {
    std::istringstream stream(pass_list);
    std::string pass;
    while (std::getline(stream, pass, ',')) {
      if (pass == "all") {
        options.legacy = options.rng = options.lock = options.layer = true;
      } else if (pass == "legacy") {
        options.legacy = true;
      } else if (pass == "rng") {
        options.rng = true;
      } else if (pass == "lock") {
        options.lock = true;
      } else if (pass == "layer") {
        options.layer = true;
      } else {
        std::cerr << "detlint: unknown pass '" << pass
                  << "' (legacy, rng, lock, layer, all)\n";
        return 2;
      }
    }
  }

  litereconfig::ProjectReport report =
      litereconfig::LintProject(root, subdirs, options);

  std::vector<litereconfig::LintViolation> reported = report.violations;
  if (!changed_base.empty()) {
    std::set<std::string> changed;
    if (ChangedFiles(root, changed_base, &changed)) {
      std::vector<litereconfig::LintViolation> filtered;
      for (litereconfig::LintViolation& violation : reported) {
        if (changed.count(violation.file) > 0) {
          filtered.push_back(std::move(violation));
        }
      }
      reported = std::move(filtered);
      std::cerr << "detlint: --changed " << changed_base << ": "
                << changed.size() << " changed file"
                << (changed.size() == 1 ? "" : "s") << "\n";
    } else {
      std::cerr << "detlint: --changed " << changed_base
                << ": git diff failed; reporting all findings\n";
    }
  }

  for (const litereconfig::LintViolation& violation : reported) {
    std::cout << litereconfig::FormatViolation(violation) << "\n";
  }
  if (json) {
    std::string payload = ToJson(reported);
    if (json_file.empty()) {
      std::cout << payload;
    } else {
      std::ofstream stream(json_file, std::ios::trunc);
      stream << payload;
    }
  }
  if (report.files_scanned == 0) {
    std::cerr << "detlint: no .h/.cc files found under " << root << "\n";
    return 2;
  }
  std::cerr << "detlint: " << report.files_scanned << " files, "
            << reported.size() << " violation"
            << (reported.size() == 1 ? "" : "s") << "\n";
  if (options.lock) {
    std::cerr << "detlint: lock graph: " << report.lock_mutexes
              << " mutexes, " << report.lock_edges << " edges, "
              << (report.lock_cycle ? "CYCLE" : "cycle-free") << "\n";
  }
  if (options.layer) {
    std::cerr << "detlint: include graph: " << report.include_edges
              << " edges over " << report.layer_count << " layers, "
              << (report.include_cycle ? "CYCLE" : "acyclic") << "\n";
  }
  return reported.empty() ? 0 : 1;
}
