// detlint — the determinism & concurrency linter (see detlint_lib.h for the
// rule catalogue). Exits nonzero when any violation is found, printing each as
// "file:line: rule: message".
//
//   usage: detlint [--root DIR] [subdir...]
//
// With no subdirs, scans src/ tools/ bench/ tests/ examples/ under the root.
// Registered as a ctest test over the real tree, and run by the CI lint job.
#include <iostream>
#include <string>
#include <vector>

#include "tools/lint/detlint_lib.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> subdirs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: detlint [--root DIR] [subdir...]\n"
                   "Token-scans C++ sources for determinism and concurrency "
                   "contract violations.\n";
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else {
      subdirs.push_back(arg);
    }
  }
  if (subdirs.empty()) {
    subdirs = {"src", "tools", "bench", "tests", "examples"};
  }

  litereconfig::LintReport report = litereconfig::LintTree(root, subdirs);
  for (const litereconfig::LintViolation& violation : report.violations) {
    std::cout << litereconfig::FormatViolation(violation) << "\n";
  }
  if (report.files_scanned == 0) {
    std::cerr << "detlint: no .h/.cc files found under " << root << "\n";
    return 2;
  }
  std::cerr << "detlint: " << report.files_scanned << " files, "
            << report.violations.size() << " violation"
            << (report.violations.size() == 1 ? "" : "s") << "\n";
  return report.violations.empty() ? 0 : 1;
}
