// Include-graph layering: the module dependency order as checked-in data.
//
// tools/lint/layers.txt declares the layer order bottom-up, one layer per
// line; modules on the same line form one stratum and may include each other.
// '#' starts a comment. A module is the directory directly under src/
// ("util", "sched", ...) or a top-level directory ("tools", "bench", ...).
//
// The pass builds the repo include graph from project-rooted quoted includes
// and enforces:
//
//   layer-order     a file includes a header from a strictly higher layer.
//                   Dependencies must point downward (or sideways within a
//                   stratum); an upward include is a layering leak.
//   include-cycle   the file-level include graph has a cycle.
//   layer-unknown   a scanned file's module is missing from layers.txt, or
//                   layers.txt names a directory that does not exist in the
//                   scanned tree (catches typos and stale entries).
#ifndef TOOLS_LINT_LAYER_PASS_H_
#define TOOLS_LINT_LAYER_PASS_H_

#include <map>
#include <string>
#include <vector>

#include "tools/lint/detlint_lib.h"
#include "tools/lint/source_model.h"

namespace litereconfig {

struct LayerSpec {
  std::map<std::string, int> level;      // module -> stratum index (0 = bottom)
  std::map<std::string, int> decl_line;  // module -> layers.txt line
  int layer_count = 0;
};

// Parses layers.txt text. Returns false (with *error set) on duplicate
// modules or invalid module names.
bool ParseLayers(const std::string& text, LayerSpec* spec, std::string* error);

// The module a repo-relative path belongs to ("src/util/rng.h" -> "util",
// "tools/lint/detlint.cc" -> "tools").
std::string ModuleOf(const std::string& path);

struct LayerPassReport {
  std::vector<LintViolation> violations;
  int include_edges = 0;
  bool cycle = false;
};

// `layers_path` is used only to anchor layer-unknown reports about the spec
// itself. Marks matched escapes used.
LayerPassReport RunLayerPass(std::vector<FileModel>& models,
                             const LayerSpec& spec,
                             const std::string& layers_path);

}  // namespace litereconfig

#endif  // TOOLS_LINT_LAYER_PASS_H_
