#include "tools/lint/rng_pass.h"

#include <algorithm>

namespace litereconfig {

namespace {

// A Pcg32 object declared somewhere in the file: `Pcg32 rng(...)`,
// `Pcg32& rng`, `Pcg32* rng`. Function declarations returning Pcg32 are
// skipped (the name is followed by a parameter list at file scope, which the
// declaration-site check below filters by requiring the declarator name not be
// immediately called... a name followed by '(' is accepted because local
// declarations are routinely `Pcg32 rng(HashKeys(...))`).
struct RngDecl {
  std::string name;
  size_t pos = 0;  // position of the name in the stripped text
};

std::vector<RngDecl> FindRngDecls(const FileModel& model) {
  const std::string& s = model.masked.stripped;
  std::vector<RngDecl> decls;
  size_t pos = FindTokenFrom(s, "Pcg32", /*require_call=*/false, 0);
  while (pos != std::string::npos) {
    size_t i = pos + 5;
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n')) {
      ++i;
    }
    while (i < s.size() && (s[i] == '&' || s[i] == '*')) {
      ++i;
      while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) {
        ++i;
      }
    }
    if (i < s.size() && IsIdentifierChar(s[i]) &&
        std::isdigit(static_cast<unsigned char>(s[i])) == 0) {
      size_t start = i;
      while (i < s.size() && IsIdentifierChar(s[i])) {
        ++i;
      }
      decls.push_back({s.substr(start, i - start), start});
    }
    pos = FindTokenFrom(s, "Pcg32", /*require_call=*/false, pos + 1);
  }
  return decls;
}

// Reference parameters of type Pcg32 in a parameter-list text.
std::vector<std::string> RngRefParams(const std::string& params) {
  std::vector<std::string> names;
  size_t pos = FindTokenFrom(params, "Pcg32", /*require_call=*/false, 0);
  while (pos != std::string::npos) {
    size_t i = pos + 5;
    while (i < params.size() && (params[i] == ' ' || params[i] == '\t')) {
      ++i;
    }
    if (i < params.size() && params[i] == '&') {
      ++i;
      while (i < params.size() && (params[i] == ' ' || params[i] == '\t')) {
        ++i;
      }
      size_t start = i;
      while (i < params.size() && IsIdentifierChar(params[i])) {
        ++i;
      }
      if (i > start) {
        names.push_back(params.substr(start, i - start));
      }
    }
    pos = FindTokenFrom(params, "Pcg32", /*require_call=*/false, pos + 1);
  }
  return names;
}

// The paren-balanced extents of ParallelFor / ParallelMap / Defer call sites.
// From the token, identifier/template/member punctuation is skipped forward to
// the opening '(' so `pool.ParallelFor(`, `ThreadPool::Shared().Defer(` and
// declaration forms all resolve to their argument extent.
std::vector<Extent> ParallelExtents(const FileModel& model) {
  const std::string& s = model.masked.stripped;
  std::vector<Extent> extents;
  for (const char* keyword : {"ParallelFor", "ParallelMap", "Defer"}) {
    size_t pos = FindTokenFrom(s, keyword, /*require_call=*/false, 0);
    while (pos != std::string::npos) {
      size_t i = pos + std::string(keyword).size();
      while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) {
        ++i;
      }
      if (i < s.size() && s[i] == '(') {
        size_t end = MatchParen(s, i);
        if (end != std::string::npos) {
          extents.push_back({i + 1, end - 1});
        }
      }
      pos = FindTokenFrom(s, keyword, /*require_call=*/false, pos + 1);
    }
  }
  return extents;
}

bool FirstTypeWordIs(const std::string& decl, const std::string& type) {
  size_t i = 0;
  while (i < decl.size() && !IsIdentifierChar(decl[i])) {
    ++i;
  }
  size_t start = i;
  while (i < decl.size() && IsIdentifierChar(decl[i])) {
    ++i;
  }
  std::string first = decl.substr(start, i - start);
  if ((first == "mutable" || first == "static") && i < decl.size()) {
    return FirstTypeWordIs(decl.substr(i), type);
  }
  return first == type;
}

// True when `name` is initialized in a constructor-initializer list of
// `model`: the token followed by '(' or '{' and preceded (over whitespace) by
// ':' or ','. Heuristic, but ctor-init is the only C++ position where a bare
// member name is directly followed by an initializer group after ':'/','.
bool HasCtorInit(const FileModel& model, const std::string& name) {
  const std::string& s = model.masked.stripped;
  size_t pos = FindTokenFrom(s, name, /*require_call=*/false, 0);
  while (pos != std::string::npos) {
    size_t after = pos + name.size();
    while (after < s.size() && (s[after] == ' ' || s[after] == '\t')) {
      ++after;
    }
    if (after < s.size() && (s[after] == '(' || s[after] == '{')) {
      size_t before = pos;
      while (before > 0 && (s[before - 1] == ' ' || s[before - 1] == '\t' ||
                            s[before - 1] == '\n' || s[before - 1] == '\r')) {
        --before;
      }
      if (before > 0 && (s[before - 1] == ',' ||
                         (s[before - 1] == ':' &&
                          (before < 2 || s[before - 2] != ':')))) {
        return true;
      }
    }
    pos = FindTokenFrom(s, name, /*require_call=*/false, pos + 1);
  }
  return false;
}

// The sibling translation unit of a header (stream_session.h ->
// stream_session.cc) and vice versa.
std::string SiblingPath(const std::string& path) {
  if (path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0) {
    return path.substr(0, path.size() - 2) + ".cc";
  }
  if (path.size() > 3 && path.compare(path.size() - 3, 3, ".cc") == 0) {
    return path.substr(0, path.size() - 3) + ".h";
  }
  return std::string();
}

}  // namespace

RngPassContext BuildRngPassContext(const std::vector<FileModel>& models) {
  RngPassContext context;
  for (const FileModel& model : models) {
    for (const ClassModel& klass : model.classes) {
      for (const MemberModel& member : klass.members) {
        if (FirstTypeWordIs(member.decl, "Pcg32")) {
          context.member_streams.insert(member.name);
        }
      }
    }
  }
  return context;
}

std::vector<LintViolation> RunRngPass(FileModel& model,
                                      const RngPassContext& context,
                                      const std::vector<FileModel>& all_models) {
  const std::string& s = model.masked.stripped;
  const std::string& path = model.file->path;
  std::vector<LintViolation> found;

  // --- rng-parallel-capture ---
  std::vector<RngDecl> decls = FindRngDecls(model);
  for (const Extent& extent : ParallelExtents(model)) {
    std::set<std::string> outside;   // declared before/outside this extent
    std::set<std::string> shadowed;  // redeclared inside: a fresh substream
    for (const RngDecl& decl : decls) {
      if (extent.Contains(decl.pos)) {
        shadowed.insert(decl.name);
      } else {
        outside.insert(decl.name);
      }
    }
    for (const std::string& name : context.member_streams) {
      if (shadowed.count(name) == 0) {
        outside.insert(name);
      }
    }
    std::set<std::string> flagged;
    for (const std::string& name : outside) {
      if (shadowed.count(name) > 0 || flagged.count(name) > 0) {
        continue;
      }
      size_t use = FindTokenFrom(s, name, /*require_call=*/false, extent.begin);
      if (use == std::string::npos || use >= extent.end) {
        continue;
      }
      int line = model.LineAt(use);
      if (!model.escapes.Allows(line, "rng-parallel-capture")) {
        found.push_back(
            {path, line, "rng-parallel-capture",
             "Pcg32 '" + name + "' declared outside this parallel extent is "
             "used inside it; which thread draws first is a race. Seed a "
             "local substream from entity ids (HashKeys) inside the body"});
      }
      flagged.insert(name);
    }
  }

  // --- rng-conditional-draw ---
  // Long-lived streams only: members and Pcg32& parameters. Locals are
  // per-scope substreams whose draw counts don't outlive the scope.
  for (const FunctionModel& function : model.functions) {
    std::set<std::string> streams(context.member_streams.begin(),
                                  context.member_streams.end());
    for (const std::string& param : RngRefParams(function.params)) {
      streams.insert(param);
    }
    for (const std::string& name : streams) {
      size_t use = FindTokenFrom(s, name, /*require_call=*/false,
                                 function.body.begin);
      while (use != std::string::npos && use < function.body.end) {
        std::vector<int> guards = model.GuardLinesAt(use, function.body);
        if (!guards.empty()) {
          int line = model.LineAt(use);
          if (!model.escapes.StreamStableAt(line, guards)) {
            found.push_back(
                {path, line, "rng-conditional-draw",
                 "stream '" + name + "' (member or Pcg32& parameter) is used "
                 "under a conditional; its draw count now depends on runtime "
                 "state. Justify with '// detlint: stream-stable(<why the "
                 "condition is a pure function of seeds and config>)' on this "
                 "line or the guarding if/switch header, or restructure so "
                 "the draw is unconditional"});
          }
        }
        use = FindTokenFrom(s, name, /*require_call=*/false, use + 1);
      }
    }
  }

  // --- rng-unseeded-member ---
  for (const ClassModel& klass : model.classes) {
    for (const MemberModel& member : klass.members) {
      if (!FirstTypeWordIs(member.decl, "Pcg32")) {
        continue;
      }
      if (member.has_initializer || member.is_static) {
        continue;  // brace-or-equals initializer carries the seed expression
      }
      bool seeded = HasCtorInit(model, member.name);
      if (!seeded) {
        std::string sibling = SiblingPath(path);
        for (const FileModel& other : all_models) {
          if (other.file->path == sibling) {
            seeded = HasCtorInit(other, member.name);
            break;
          }
        }
      }
      if (!seeded && !model.escapes.Allows(member.line, "rng-unseeded-member")) {
        found.push_back(
            {path, member.line, "rng-unseeded-member",
             "Pcg32 member '" + member.name + "' of " + klass.name +
                 " has no explicit seed expression (no initializer and no "
                 "constructor-initializer found); seed it from entity ids "
                 "via HashKeys so the stream is a pure function of "
                 "(seeds, config)"});
      }
    }
  }

  return found;
}

}  // namespace litereconfig
