#include "tools/lint/lock_pass.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <tuple>

namespace litereconfig {

namespace {

constexpr const char* kMutexHeader = "src/util/mutex.h";

// One lock acquisition inside a function body. `scope_end` bounds the region
// where the lock is considered held (enclosing brace block for MutexLock,
// matching Unlock or function end for manual Lock, function end for
// LR_ACQUIRE annotations).
struct Acquisition {
  std::string id;
  size_t pos = 0;
  size_t scope_end = 0;
  int line = 0;
};

struct FunctionInfo {
  const FileModel* model = nullptr;
  const FunctionModel* function = nullptr;
  std::vector<Acquisition> acquisitions;
  std::vector<std::string> requires_held;           // LR_REQUIRES, normalized
  std::vector<std::pair<std::string, size_t>> calls;  // bare name, position
};

// All brace-delimited extents of a file (for MutexLock scoping).
std::vector<Extent> BraceExtents(const std::string& s) {
  std::vector<Extent> extents;
  std::vector<size_t> stack;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '{') {
      stack.push_back(i);
    } else if (s[i] == '}' && !stack.empty()) {
      extents.push_back({stack.back() + 1, i});
      stack.pop_back();
    }
  }
  return extents;
}

// Lambda body extents: "] (params)? mutable? noexcept? (-> type)? {".
// Code inside a lambda does not run while lexically-enclosing locks are held.
std::vector<Extent> LambdaExtents(const std::string& s) {
  std::vector<Extent> extents;
  for (size_t i = s.find(']'); i != std::string::npos; i = s.find(']', i + 1)) {
    size_t j = i + 1;
    while (j < s.size() && (s[j] == ' ' || s[j] == '\t' || s[j] == '\n')) {
      ++j;
    }
    if (j < s.size() && s[j] == '(') {
      j = MatchParen(s, j);
      if (j == std::string::npos) {
        continue;
      }
    }
    for (;;) {
      while (j < s.size() && (s[j] == ' ' || s[j] == '\t' || s[j] == '\n')) {
        ++j;
      }
      if (s.compare(j, 7, "mutable") == 0 || s.compare(j, 8, "noexcept") == 0) {
        while (j < s.size() && IsIdentifierChar(s[j])) {
          ++j;
        }
        continue;
      }
      if (s.compare(j, 2, "->") == 0) {
        size_t brace = s.find('{', j);
        if (brace == std::string::npos) {
          j = s.size();
        } else {
          j = brace;
        }
      }
      break;
    }
    if (j < s.size() && s[j] == '{') {
      size_t end = MatchBrace(s, j);
      if (end != std::string::npos) {
        extents.push_back({j + 1, end - 1});
      }
    }
  }
  return extents;
}

bool LambdaSeparated(const std::vector<Extent>& lambdas, size_t holder_pos,
                     size_t inner_pos) {
  for (const Extent& lambda : lambdas) {
    if (lambda.Contains(inner_pos) && !lambda.Contains(holder_pos)) {
      return true;
    }
  }
  return false;
}

// Syntactic mutex identity; see the header comment for the merging rules.
std::string NormalizeMutexExpr(const std::string& raw,
                               const FunctionModel* function) {
  std::string expr;
  for (size_t i = 0; i < raw.size(); ++i) {
    char c = raw[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      continue;
    }
    if (c == '-' && i + 1 < raw.size() && raw[i + 1] == '>') {
      expr += '.';
      ++i;
      continue;
    }
    expr += c;
  }
  while (!expr.empty() && (expr.front() == '&' || expr.front() == '*')) {
    expr.erase(expr.begin());
  }
  if (expr.rfind("this.", 0) == 0) {
    expr = expr.substr(5);
  }
  if (expr.find('.') == std::string::npos &&
      expr.find("::") == std::string::npos && function != nullptr &&
      !function->class_name.empty()) {
    return function->class_name + "::" + expr;
  }
  return expr;
}

// The extent of the innermost brace block containing `pos`.
size_t EnclosingBraceEnd(const std::vector<Extent>& braces, size_t pos,
                         size_t fallback) {
  size_t best = fallback;
  size_t best_begin = 0;
  bool have = false;
  for (const Extent& brace : braces) {
    if (brace.Contains(pos) && (!have || brace.begin > best_begin)) {
      best = brace.end;
      best_begin = brace.begin;
      have = true;
    }
  }
  return best;
}

void CollectAcquisitions(const FileModel& model, const FunctionModel& function,
                         const std::vector<Extent>& braces,
                         FunctionInfo* info) {
  const std::string& s = model.masked.stripped;

  for (const std::string& raw : function.acquires) {
    Acquisition acquired;
    acquired.id = NormalizeMutexExpr(raw, &function);
    acquired.pos = function.body.begin;
    acquired.scope_end = function.body.end;
    acquired.line = function.line;
    info->acquisitions.push_back(acquired);
  }
  for (const std::string& raw : function.requires_) {
    info->requires_held.push_back(NormalizeMutexExpr(raw, &function));
  }

  // MutexLock <name>(<expr>); — scoped until the enclosing brace closes.
  size_t pos = FindTokenFrom(s, "MutexLock", /*require_call=*/false,
                             function.body.begin);
  while (pos != std::string::npos && pos < function.body.end) {
    size_t i = pos + 9;
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) {
      ++i;
    }
    while (i < s.size() && IsIdentifierChar(s[i])) {
      ++i;
    }
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) {
      ++i;
    }
    if (i < s.size() && s[i] == '(') {
      size_t end = MatchParen(s, i);
      if (end != std::string::npos) {
        Acquisition acquired;
        acquired.id = NormalizeMutexExpr(s.substr(i + 1, end - i - 2), &function);
        acquired.pos = pos;
        acquired.scope_end = EnclosingBraceEnd(braces, pos, function.body.end);
        acquired.line = model.LineAt(pos);
        info->acquisitions.push_back(acquired);
      }
    }
    pos = FindTokenFrom(s, "MutexLock", /*require_call=*/false, pos + 1);
  }

  // expr.Lock() / expr->Lock() — held to the matching Unlock or function end.
  for (const char* marker : {".Lock(", "->Lock("}) {
    size_t at = s.find(marker, function.body.begin);
    while (at != std::string::npos && at < function.body.end) {
      // Walk the object expression backward: identifiers, '.', '->', '::'.
      size_t start = at;
      while (start > function.body.begin) {
        char c = s[start - 1];
        if (IsIdentifierChar(c) || c == '.' || c == '_') {
          --start;
        } else if (c == '>' && start >= 2 && s[start - 2] == '-') {
          start -= 2;
        } else if (c == ':' && start >= 2 && s[start - 2] == ':') {
          start -= 2;
        } else {
          break;
        }
      }
      if (start < at) {
        Acquisition acquired;
        acquired.id = NormalizeMutexExpr(s.substr(start, at - start), &function);
        acquired.pos = at;
        acquired.scope_end = function.body.end;
        acquired.line = model.LineAt(at);
        // Match the first Unlock on the same expression after the Lock.
        std::string expr = s.substr(start, at - start);
        for (const char* un : {".Unlock(", "->Unlock("}) {
          size_t upos = s.find(std::string(expr) + un, at);
          if (upos != std::string::npos && upos < acquired.scope_end) {
            acquired.scope_end = upos;
          }
        }
        info->acquisitions.push_back(acquired);
      }
      at = s.find(marker, at + 1);
    }
  }
}

struct CycleSearch {
  const std::map<std::string, std::set<std::string>>* graph;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::vector<std::string> cycle;

  bool Visit(const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    auto it = graph->find(node);
    if (it != graph->end()) {
      for (const std::string& next : it->second) {
        int c = color.count(next) ? color[next] : 0;
        if (c == 1) {
          auto from = std::find(stack.begin(), stack.end(), next);
          cycle.assign(from, stack.end());
          cycle.push_back(next);
          return true;
        }
        if (c == 0 && Visit(next)) {
          return true;
        }
      }
    }
    stack.pop_back();
    color[node] = 2;
    return false;
  }
};

}  // namespace

LockPassReport RunLockPass(std::vector<FileModel>& models) {
  LockPassReport report;

  // --- guarded-by-coverage ---
  for (FileModel& model : models) {
    if (model.file->path == kMutexHeader) {
      continue;
    }
    for (const ClassModel& klass : model.classes) {
      if (!klass.owns_mutex) {
        continue;
      }
      for (const MemberModel& member : klass.members) {
        if (member.guarded || member.is_const || member.is_reference ||
            member.is_atomic || member.is_mutex || member.is_condvar ||
            member.is_static || member.name.empty()) {
          continue;
        }
        if (!model.escapes.Allows(member.line, "guarded-by-coverage")) {
          report.violations.push_back(
              {model.file->path, member.line, "guarded-by-coverage",
               "'" + member.name + "' is a mutable member of " + klass.name +
                   ", which owns a Mutex, but carries no LR_GUARDED_BY "
                   "annotation. Annotate it, or justify set-once-before-"
                   "sharing state with '// detlint: allow(guarded-by-"
                   "coverage) <reason>'"});
        }
      }
    }
  }

  // --- acquisition extraction ---
  std::vector<FunctionInfo> infos;
  std::map<std::string, std::vector<size_t>> by_bare_name;
  for (const FileModel& model : models) {
    if (model.file->path == kMutexHeader) {
      continue;
    }
    std::vector<Extent> braces = BraceExtents(model.masked.stripped);
    for (const FunctionModel& function : model.functions) {
      FunctionInfo info;
      info.model = &model;
      info.function = &function;
      CollectAcquisitions(model, function, braces, &info);
      infos.push_back(std::move(info));
    }
  }
  for (size_t i = 0; i < infos.size(); ++i) {
    by_bare_name[infos[i].function->bare_name].push_back(i);
  }

  // Call sites: identifier tokens followed by '(' whose spelling matches a
  // known function's bare name. One linear scan per body.
  for (FunctionInfo& info : infos) {
    const std::string& s = info.model->masked.stripped;
    size_t i = info.function->body.begin;
    while (i < info.function->body.end && i < s.size()) {
      if (IsIdentifierChar(s[i]) && (i == 0 || !IsIdentifierChar(s[i - 1])) &&
          std::isdigit(static_cast<unsigned char>(s[i])) == 0) {
        size_t start = i;
        while (i < s.size() && IsIdentifierChar(s[i])) {
          ++i;
        }
        std::string word = s.substr(start, i - start);
        size_t after = i;
        while (after < s.size() && (s[after] == ' ' || s[after] == '\t')) {
          ++after;
        }
        if (after < s.size() && s[after] == '(' &&
            word != info.function->bare_name &&
            by_bare_name.count(word) > 0) {
          info.calls.emplace_back(word, start);
        }
      } else {
        ++i;
      }
    }
  }

  // --- acquire-effect fixpoint over the bare-name call graph ---
  std::map<std::string, std::set<std::string>> effect;
  for (const FunctionInfo& info : infos) {
    std::set<std::string>& mine = effect[info.function->bare_name];
    for (const Acquisition& acquired : info.acquisitions) {
      mine.insert(acquired.id);
    }
  }
  for (int round = 0; round < 16; ++round) {
    bool changed = false;
    for (const FunctionInfo& info : infos) {
      std::set<std::string>& mine = effect[info.function->bare_name];
      for (const auto& call : info.calls) {
        for (const std::string& id : effect[call.first]) {
          changed = mine.insert(id).second || changed;
        }
      }
    }
    if (!changed) {
      break;
    }
  }

  // --- edge generation ---
  // edge (A, B) -> first witnessing site
  std::map<std::pair<std::string, std::string>, LintViolation> edges;
  std::set<std::string> nodes;
  auto add_edge = [&](const std::string& a, const std::string& b,
                      const FileModel& model, int line,
                      const std::string& how) {
    if (a == b) {
      return;
    }
    nodes.insert(a);
    nodes.insert(b);
    edges.emplace(std::make_pair(a, b),
                  LintViolation{model.file->path, line, "lock-cycle",
                                "'" + b + "' acquired while holding '" + a +
                                    "' (" + how + ")"});
  };
  for (const FunctionInfo& info : infos) {
    std::vector<Extent> lambdas = LambdaExtents(info.model->masked.stripped);
    for (const Acquisition& acquired : info.acquisitions) {
      nodes.insert(acquired.id);
      for (const Acquisition& other : info.acquisitions) {
        if (other.pos > acquired.pos && other.pos < acquired.scope_end &&
            !LambdaSeparated(lambdas, acquired.pos, other.pos)) {
          add_edge(acquired.id, other.id, *info.model, other.line, "directly");
        }
      }
      for (const auto& call : info.calls) {
        if (call.second > acquired.pos && call.second < acquired.scope_end &&
            !LambdaSeparated(lambdas, acquired.pos, call.second)) {
          for (const std::string& id : effect[call.first]) {
            add_edge(acquired.id, id, *info.model,
                     info.model->LineAt(call.second),
                     "via call to " + call.first + "()");
          }
        }
      }
    }
    for (const std::string& held : info.requires_held) {
      nodes.insert(held);
      for (const Acquisition& acquired : info.acquisitions) {
        add_edge(held, acquired.id, *info.model, acquired.line,
                 "LR_REQUIRES(" + held + ") on " + info.function->name + "()");
      }
    }
  }

  report.mutexes = static_cast<int>(nodes.size());
  report.edges = static_cast<int>(edges.size());

  // --- cycle detection ---
  std::map<std::string, std::set<std::string>> graph;
  for (const auto& edge : edges) {
    graph[edge.first.first].insert(edge.first.second);
  }
  CycleSearch search;
  search.graph = &graph;
  for (const std::string& node : nodes) {
    if ((search.color.count(node) ? search.color[node] : 0) == 0 &&
        search.Visit(node)) {
      break;
    }
  }
  if (!search.cycle.empty()) {
    report.cycle = true;
    std::string path;
    for (size_t i = 0; i < search.cycle.size(); ++i) {
      if (i > 0) {
        path += " -> ";
      }
      path += search.cycle[i];
    }
    // Anchor the report at the witnessing site of the cycle's closing edge.
    const std::string& from = search.cycle[search.cycle.size() - 2];
    const std::string& to = search.cycle.back();
    auto it = edges.find(std::make_pair(from, to));
    LintViolation v = it != edges.end()
                          ? it->second
                          : LintViolation{models.empty() ? std::string("?")
                                                         : models[0].file->path,
                                          1, "lock-cycle", ""};
    v.rule = "lock-cycle";
    v.message = "lock acquisition order cycle (potential deadlock): " + path +
                "; last edge: " + (it != edges.end() ? it->second.message : "");
    report.violations.push_back(std::move(v));
  }

  std::sort(report.violations.begin(), report.violations.end(),
            [](const LintViolation& a, const LintViolation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return report;
}

}  // namespace litereconfig
