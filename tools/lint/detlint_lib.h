// detlint: the determinism & concurrency lint pass.
//
// The repository's core contract is that every EvalResult is a pure function
// of (seeds, config) and bit-identical at any --threads value. The dynamic
// side of that contract lives in tests/parallel_eval_test.cc and the TSan CI
// job; detlint is the static side. It token-scans the tree and rejects the
// constructs that historically introduce silent nondeterminism:
//
//   banned-random    std::random_device / rand() / mt19937 & friends — all
//                    randomness must come from src/util/rng.h (Pcg32 seeded
//                    via HashKeys), keyed by entity identifiers.
//   banned-time      time() / clock() / gettimeofday — no wall-clock reads in
//                    result-producing code.
//   banned-clock     std::chrono steady/system/high_resolution_clock, except
//                    the sanctioned bench timing helper (bench/bench_util.h).
//   banned-include   <random>, <ctime>, <chrono>, <unordered_map>,
//                    <unordered_set> — the headers behind the rules above.
//   raw-sync         std::mutex / condition_variable / lock types outside
//                    src/util/mutex.h — shared state must use the annotated
//                    wrappers so clang -Wthread-safety can check locking.
//   unordered-iter   range-for over an unordered container — iteration order
//                    is unspecified and must not feed results.
//   mutable-global   file-scope / static / thread_local mutable state — a
//                    hidden channel between runs and between threads.
//   parallel-accum   compound assignment (+=, -=, *=, /=) onto a double/float
//                    inside a ParallelFor/ParallelMap extent — floating-point
//                    accumulation order would depend on thread scheduling;
//                    write per-index slots and reduce serially.
//   header-guard     #ifndef guard must be the repo-relative path, uppercase,
//                    with a matching #define and a "#endif  // GUARD" trailer.
//   include-path     project includes are written from the repo root
//                    ("src/...", not "../util/...").
//
// Escapes are inline and must carry a reason, e.g.
//   foo();  // detlint: allow(banned-clock) bench wall timing
// and, for sanctioned unordered iteration,
//   for (const auto& kv : index) {  // detlint: order-independent
// Comments and string literals are stripped before token matching, so prose
// about a banned construct never trips the linter.
#ifndef TOOLS_LINT_DETLINT_LIB_H_
#define TOOLS_LINT_DETLINT_LIB_H_

#include <string>
#include <vector>

namespace litereconfig {

struct LintViolation {
  std::string file;  // repo-relative path
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

// "file:line: rule: message" — the exact format CI logs and editors expect.
std::string FormatViolation(const LintViolation& violation);

// Lints one file given its repo-relative path (used for path-scoped rules such
// as header-guard and the raw-sync exemption) and its full contents.
std::vector<LintViolation> LintFileContent(const std::string& repo_relative_path,
                                           const std::string& content);

struct LintReport {
  std::vector<LintViolation> violations;
  int files_scanned = 0;
};

// Recursively lints every .h/.cc file under root/<subdir> for each listed
// subdir. Files are visited in sorted path order so output is deterministic.
LintReport LintTree(const std::string& root, const std::vector<std::string>& subdirs);

// Exposed for tests: `content` with comments and string/character literals
// blanked out (structure and line breaks preserved).
std::string StripCommentsAndStrings(const std::string& content);

}  // namespace litereconfig

#endif  // TOOLS_LINT_DETLINT_LIB_H_
