// detlint: the determinism & concurrency lint passes.
//
// The repository's core contract is that every EvalResult is a pure function
// of (seeds, config) and bit-identical at any --threads value. The dynamic
// side of that contract lives in tests/parallel_eval_test.cc and the TSan CI
// job; detlint is the static side. Four passes:
//
// Legacy token rules (PR 4), per line:
//
//   banned-random    std::random_device / rand() / mt19937 & friends — all
//                    randomness must come from src/util/rng.h (Pcg32 seeded
//                    via HashKeys), keyed by entity identifiers.
//   banned-time      time() / clock() / gettimeofday — no wall-clock reads in
//                    result-producing code.
//   banned-clock     std::chrono steady/system/high_resolution_clock, except
//                    the sanctioned bench timing helper (bench/bench_util.h).
//   banned-include   <random>, <ctime>, <chrono>, <unordered_map>,
//                    <unordered_set> — the headers behind the rules above.
//   raw-sync         std::mutex / condition_variable / lock types outside
//                    src/util/mutex.h — shared state must use the annotated
//                    wrappers so clang -Wthread-safety can check locking.
//   unordered-iter   range-for over an unordered container — iteration order
//                    is unspecified and must not feed results.
//   mutable-global   file-scope / static / thread_local mutable state — a
//                    hidden channel between runs and between threads.
//   parallel-accum   compound assignment (+=, -=, *=, /=) onto a double/float
//                    inside a ParallelFor/ParallelMap extent — floating-point
//                    accumulation order would depend on thread scheduling;
//                    write per-index slots and reduce serially.
//   header-guard     #ifndef guard must be the repo-relative path, uppercase,
//                    with a matching #define and a "#endif  // GUARD" trailer.
//   include-path     project includes are written from the repo root
//                    ("src/...", not "../util/...").
//
// Structural passes (see rng_pass.h, lock_pass.h, layer_pass.h):
//
//   rng-parallel-capture / rng-conditional-draw / rng-unseeded-member
//   lock-cycle / guarded-by-coverage
//   layer-order / include-cycle / layer-unknown
//
// Escape hygiene (only when every pass runs, i.e. the full detlint_tree
// configuration — a pass-restricted run cannot tell which escapes the other
// passes would have consumed):
//
//   unused-escape    a "// detlint:" escape that no longer suppresses any
//                    finding; prune it.
//   escape-reason    an escape with no justification text.
//
// Escapes are inline, must start their comment, and must carry a reason, e.g.
//   foo();  // detlint: allow(banned-clock) bench wall timing
// for sanctioned unordered iteration,
//   for (const auto& kv : index) {  // detlint: order-independent
// and for a conditional draw whose count is schedule-invariant,
//   if (!branch.cpu) {  // detlint: stream-stable(branch id is pure config)
// Comments and string literals are stripped before token matching, and escape
// directives are only honored inside real comments — prose about a banned
// construct never trips the linter, and a directive quoted in a string
// literal never suppresses anything.
#ifndef TOOLS_LINT_DETLINT_LIB_H_
#define TOOLS_LINT_DETLINT_LIB_H_

#include <string>
#include <vector>

#include "tools/lint/source_model.h"

namespace litereconfig {

struct LintViolation {
  std::string file;  // repo-relative path
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

// "file:line: rule: message" — the exact format CI logs and editors expect.
std::string FormatViolation(const LintViolation& violation);

// Lints one file with the legacy token rules given its repo-relative path
// (used for path-scoped rules such as header-guard and the raw-sync
// exemption) and its full contents. The structural passes and escape hygiene
// need project context and run only under LintProject*.
std::vector<LintViolation> LintFileContent(const std::string& repo_relative_path,
                                           const std::string& content);

// The legacy rules over an already-built model, marking consumed escapes used
// in model.escapes (the building block behind both entry points above/below).
void RunLegacyRules(FileModel& model, std::vector<LintViolation>* out);

struct LintReport {
  std::vector<LintViolation> violations;
  int files_scanned = 0;
};

// Recursively lints every .h/.cc file under root/<subdir> for each listed
// subdir with the legacy rules only. Files are visited in sorted path order
// so output is deterministic. Kept for compatibility; detlint's CLI runs
// LintProject.
LintReport LintTree(const std::string& root, const std::vector<std::string>& subdirs);

// --- the multi-pass project analyzer ------------------------------------

struct ProjectOptions {
  bool legacy = true;
  bool rng = true;
  bool lock = true;
  bool layer = true;
  // Escape hygiene (unused-escape / escape-reason); effective only when all
  // four passes are enabled.
  bool check_escapes = true;
  // Contents of layers.txt; has_layers=false means the spec is absent (a
  // layer-unknown finding when the layer pass is enabled).
  std::string layers_text;
  bool has_layers = false;
  std::string layers_path = "tools/lint/layers.txt";
};

struct ProjectReport {
  std::vector<LintViolation> violations;
  int files_scanned = 0;
  // Lock-order graph summary (for the "cycle-free" report line).
  int lock_mutexes = 0;
  int lock_edges = 0;
  bool lock_cycle = false;
  // Include-graph summary.
  int include_edges = 0;
  int layer_count = 0;
  bool include_cycle = false;
};

// Runs the enabled passes over an in-memory file set (the test entry point).
// Violations are sorted by (file, line, rule, message).
ProjectReport LintProjectSources(std::vector<SourceFile> sources,
                                 const ProjectOptions& options);

// Reads every .h/.cc under root/<subdir>s, loads root/tools/lint/layers.txt
// when present (unless options already carries a spec), and delegates to
// LintProjectSources.
ProjectReport LintProject(const std::string& root,
                          const std::vector<std::string>& subdirs,
                          ProjectOptions options);

// The expected #ifndef guard for a repo-relative path (uppercased path with
// non-alphanumerics as '_', plus a trailing '_'). Shared with detlint --fix.
std::string ExpectedHeaderGuard(const std::string& rel_path);

// Exposed for tests: `content` with comments and string/character literals
// blanked out (structure and line breaks preserved).
std::string StripCommentsAndStrings(const std::string& content);

}  // namespace litereconfig

#endif  // TOOLS_LINT_DETLINT_LIB_H_
