#include "tools/lint/detlint_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "tools/lint/layer_pass.h"
#include "tools/lint/lock_pass.h"
#include "tools/lint/rng_pass.h"
#include "tools/lint/source_model.h"

namespace litereconfig {

namespace {

bool IsIdentChar(char c) { return IsIdentifierChar(c); }

std::string LTrim(const std::string& s) {
  size_t i = s.find_first_not_of(" \t");
  return i == std::string::npos ? std::string() : s.substr(i);
}

std::string RTrim(const std::string& s) {
  size_t i = s.find_last_not_of(" \t\r");
  return i == std::string::npos ? std::string() : s.substr(0, i + 1);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// --- token matching ------------------------------------------------------

struct BannedToken {
  const char* token;
  // When true the token must be followed by '(' and not be preceded by a
  // member/scope accessor — it is a free-function call like rand( or time(.
  bool require_call;
  const char* rule;
  const char* message;
};

const BannedToken kBannedTokens[] = {
    {"std::random_device", false, "banned-random",
     "nondeterministic seed source; draw from src/util/rng.h (Pcg32 seeded via "
     "HashKeys)"},
    {"std::mt19937", false, "banned-random",
     "unsanctioned generator; use src/util/rng.h Pcg32 keyed by entity ids"},
    {"std::mt19937_64", false, "banned-random",
     "unsanctioned generator; use src/util/rng.h Pcg32 keyed by entity ids"},
    {"std::default_random_engine", false, "banned-random",
     "unsanctioned generator; use src/util/rng.h Pcg32 keyed by entity ids"},
    {"rand", true, "banned-random",
     "global-state RNG; use src/util/rng.h Pcg32 keyed by entity ids"},
    {"srand", true, "banned-random",
     "global-state RNG seeding; use src/util/rng.h Pcg32 keyed by entity ids"},
    {"random_shuffle", false, "banned-random",
     "unspecified RNG; shuffle with an explicit Pcg32 if order must vary"},
    {"time", true, "banned-time",
     "wall-clock read; results must be pure functions of (seeds, config)"},
    {"clock", true, "banned-time",
     "wall-clock read; results must be pure functions of (seeds, config)"},
    {"gettimeofday", true, "banned-time",
     "wall-clock read; results must be pure functions of (seeds, config)"},
    {"steady_clock", false, "banned-clock",
     "wall-clock source; bench reporting must go through bench/bench_util.h "
     "WallTimer, simulation through LatencyModel"},
    {"system_clock", false, "banned-clock",
     "wall-clock source; bench reporting must go through bench/bench_util.h "
     "WallTimer, simulation through LatencyModel"},
    {"high_resolution_clock", false, "banned-clock",
     "wall-clock source; bench reporting must go through bench/bench_util.h "
     "WallTimer, simulation through LatencyModel"},
};

const char* const kRawSyncTokens[] = {
    "std::mutex", "std::recursive_mutex", "std::timed_mutex",
    "std::shared_mutex", "std::condition_variable",
    "std::condition_variable_any", "std::lock_guard", "std::unique_lock",
    "std::scoped_lock", "std::shared_lock",
};

// Headers whose presence implies one of the banned constructs.
const std::map<std::string, const char*> kBannedIncludes = {
    {"random", "banned-random"},  {"ctime", "banned-time"},
    {"time.h", "banned-time"},    {"sys/time.h", "banned-time"},
    {"chrono", "banned-clock"},   {"unordered_map", "unordered-iter"},
    {"unordered_set", "unordered-iter"},
};

const std::map<std::string, const char*> kRawSyncIncludes = {
    {"mutex", "raw-sync"},
    {"condition_variable", "raw-sync"},
    {"shared_mutex", "raw-sync"},
};

// Finds `token` in `code` respecting identifier boundaries; returns npos when
// absent. For require_call tokens the match must look like a free-function
// call (followed by '(', not reached via '.', '->', or '::').
size_t FindToken(const std::string& code, const std::string& token,
                 bool require_call, size_t from) {
  size_t pos = code.find(token, from);
  while (pos != std::string::npos) {
    char prev = pos == 0 ? ' ' : code[pos - 1];
    size_t end = pos + token.size();
    char next = end < code.size() ? code[end] : ' ';
    bool boundary_ok = !IsIdentChar(prev) && !IsIdentChar(next);
    if (boundary_ok && require_call) {
      if (prev == '.' || prev == ':' || prev == '>') {
        boundary_ok = false;
      } else {
        size_t paren = code.find_first_not_of(" \t", end);
        boundary_ok = paren != std::string::npos && code[paren] == '(';
      }
    }
    if (boundary_ok) {
      return pos;
    }
    pos = code.find(token, pos + 1);
  }
  return std::string::npos;
}

bool ContainsWord(const std::string& code, const std::string& word) {
  return FindToken(code, word, /*require_call=*/false, 0) != std::string::npos;
}

// --- declaration scans ---------------------------------------------------

// Returns identifiers declared on this line as unordered containers, e.g.
// "std::unordered_map<K, V> index;" yields "index".
std::vector<std::string> UnorderedDeclNames(const std::string& code) {
  std::vector<std::string> names;
  for (const char* marker : {"unordered_map<", "unordered_set<"}) {
    size_t pos = code.find(marker);
    while (pos != std::string::npos) {
      size_t open = code.find('<', pos);
      int depth = 0;
      size_t i = open;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') {
          ++depth;
        } else if (code[i] == '>') {
          if (--depth == 0) {
            break;
          }
        }
      }
      if (i < code.size()) {
        size_t name_start = code.find_first_not_of(" \t*&", i + 1);
        if (name_start != std::string::npos && IsIdentChar(code[name_start])) {
          size_t name_end = name_start;
          while (name_end < code.size() && IsIdentChar(code[name_end])) {
            ++name_end;
          }
          names.push_back(code.substr(name_start, name_end - name_start));
        }
      }
      pos = code.find(marker, pos + 1);
    }
  }
  return names;
}

// Returns identifiers declared on this line with a double/float type, e.g.
// "double sum = 0.0;" yields "sum". Skips matches where the following token is
// not an identifier (template arguments, casts) or opens a parameter list (a
// function returning double).
std::vector<std::string> FloatDeclNames(const std::string& code) {
  std::vector<std::string> names;
  for (const char* marker : {"double", "float"}) {
    const std::string token = marker;
    size_t pos = FindToken(code, token, /*require_call=*/false, 0);
    while (pos != std::string::npos) {
      size_t name_start = code.find_first_not_of(" \t*&", pos + token.size());
      if (name_start != std::string::npos && IsIdentChar(code[name_start]) &&
          std::isdigit(static_cast<unsigned char>(code[name_start])) == 0) {
        size_t name_end = name_start;
        while (name_end < code.size() && IsIdentChar(code[name_end])) {
          ++name_end;
        }
        size_t after = code.find_first_not_of(" \t", name_end);
        if (after == std::string::npos || code[after] != '(') {
          names.push_back(code.substr(name_start, name_end - name_start));
        }
      }
      pos = FindToken(code, token, /*require_call=*/false, pos + token.size());
    }
  }
  return names;
}

// Scans the paren-balanced extents of ParallelFor(...)/ParallelMap(...) call
// sites for compound assignments (+=, -=, *=, /=) onto identifiers declared
// with a double/float type anywhere in the file. The sum of floating-point
// terms depends on evaluation order, and inside a parallel extent that order
// is which-thread-ran-first — exactly the nondeterminism the thread pool's
// index-distribution design exists to rule out. Indexed writes (out[i] += ...)
// target per-index slots and are not flagged; neither are member accesses.
void CheckParallelAccum(
    const std::string& stripped,
    const std::vector<std::string>& float_names,
    const std::function<bool(size_t, const char*)>& allowed_on,
    const std::function<void(size_t, const char*, const std::string&)>& report) {
  for (const char* marker : {"ParallelFor", "ParallelMap"}) {
    const std::string token = marker;
    size_t pos = FindToken(stripped, token, /*require_call=*/false, 0);
    while (pos != std::string::npos) {
      size_t open = stripped.find_first_not_of(" \t", pos + token.size());
      if (open == std::string::npos || stripped[open] != '(') {
        pos = FindToken(stripped, token, /*require_call=*/false,
                        pos + token.size());
        continue;
      }
      int depth = 0;
      size_t close = stripped.size();
      for (size_t i = open; i < stripped.size(); ++i) {
        if (stripped[i] == '(') {
          ++depth;
        } else if (stripped[i] == ')') {
          if (--depth == 0) {
            close = i;
            break;
          }
        }
      }
      for (size_t i = open; i + 1 < close; ++i) {
        char op = stripped[i];
        if ((op != '+' && op != '-' && op != '*' && op != '/') ||
            stripped[i + 1] != '=' ||
            (i + 2 < stripped.size() && stripped[i + 2] == '=')) {
          continue;
        }
        // ++/-- and operator tokens are not compound assignments.
        if (i > 0 && (stripped[i - 1] == op || stripped[i - 1] == '<' ||
                      stripped[i - 1] == '>')) {
          continue;
        }
        // Walk back to the assigned-to expression.
        size_t j = i;
        while (j > open && (stripped[j - 1] == ' ' || stripped[j - 1] == '\t')) {
          --j;
        }
        if (j == open || stripped[j - 1] == ']') {
          continue;  // indexed write into a per-index slot: order-independent
        }
        size_t name_end = j;
        while (j > open && IsIdentChar(stripped[j - 1])) {
          --j;
        }
        if (j == name_end) {
          continue;
        }
        if (j > open && (stripped[j - 1] == '.' || stripped[j - 1] == '>')) {
          continue;  // member access; out of scope for this heuristic
        }
        std::string name = stripped.substr(j, name_end - j);
        bool is_float = false;
        for (const std::string& candidate : float_names) {
          is_float = is_float || candidate == name;
        }
        if (!is_float) {
          continue;
        }
        size_t line = static_cast<size_t>(
            std::count(stripped.begin(), stripped.begin() + static_cast<long>(i),
                       '\n'));
        if (!allowed_on(line, "parallel-accum")) {
          report(line, "parallel-accum",
                 "'" + name + "' accumulates floating-point terms inside a " +
                     marker + " extent; the result depends on thread "
                     "scheduling. Write per-index results into caller-owned "
                     "slots and reduce serially, or justify with "
                     "'// detlint: allow(parallel-accum) <reason>'");
        }
      }
      pos = FindToken(stripped, token, /*require_call=*/false, close);
    }
  }
}

// If `code` holds a range-for, returns the range expression ("for (x : expr)").
std::string RangeForExpr(const std::string& code) {
  size_t pos = FindToken(code, "for", /*require_call=*/false, 0);
  if (pos == std::string::npos) {
    return std::string();
  }
  size_t open = code.find('(', pos);
  if (open == std::string::npos) {
    return std::string();
  }
  int depth = 0;
  size_t colon = std::string::npos;
  size_t close = code.size();
  for (size_t i = open; i < code.size(); ++i) {
    char c = code[i];
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      if (--depth == 0) {
        close = i;
        break;
      }
    } else if (c == ':' && depth == 1 && colon == std::string::npos) {
      bool scope = (i + 1 < code.size() && code[i + 1] == ':') ||
                   (i > 0 && code[i - 1] == ':');
      if (!scope) {
        colon = i;
      }
    }
  }
  if (colon == std::string::npos) {
    return std::string();
  }
  return code.substr(colon + 1, close - colon - 1);
}

// True when the line begins a static / thread_local *variable* declaration
// (not a static member-function declaration, which carries a '(').
bool IsMutableStaticDecl(const std::string& code) {
  std::string trimmed = LTrim(code);
  bool has_static = StartsWith(trimmed, "static ");
  bool has_tls = StartsWith(trimmed, "thread_local ");
  if (!has_static && !has_tls) {
    return false;
  }
  if (ContainsWord(trimmed, "const") || ContainsWord(trimmed, "constexpr")) {
    return false;
  }
  size_t stop = trimmed.find_first_of("=;{");
  if (stop == std::string::npos) {
    return false;  // declaration continues on another line; assume a function
  }
  return trimmed.find('(') >= stop;
}

// --- header guards -------------------------------------------------------

std::string ExpectedGuard(const std::string& rel_path) {
  return ExpectedHeaderGuard(rel_path);
}

void CheckHeaderGuard(const std::string& rel_path,
                      const std::vector<std::string>& raw_lines,
                      std::vector<LintViolation>* out) {
  const std::string expected = ExpectedGuard(rel_path);
  int ifndef_line = 0;
  std::string guard;
  int endif_line = 0;
  std::string endif_text;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    std::string trimmed = LTrim(raw_lines[i]);
    if (StartsWith(trimmed, "#pragma once")) {
      out->push_back({rel_path, static_cast<int>(i + 1), "header-guard",
                      "use an #ifndef " + expected + " guard, not #pragma once"});
      return;
    }
    if (guard.empty() && StartsWith(trimmed, "#ifndef")) {
      ifndef_line = static_cast<int>(i + 1);
      std::istringstream stream(trimmed);
      std::string directive;
      stream >> directive >> guard;
      if (guard != expected) {
        out->push_back({rel_path, ifndef_line, "header-guard",
                        "guard is '" + guard + "', expected '" + expected + "'"});
        return;
      }
      if (i + 1 >= raw_lines.size() ||
          RTrim(raw_lines[i + 1]) != "#define " + expected) {
        out->push_back({rel_path, ifndef_line + 1, "header-guard",
                        "expected '#define " + expected +
                            "' immediately after the #ifndef"});
      }
    }
    if (StartsWith(trimmed, "#endif")) {
      endif_line = static_cast<int>(i + 1);
      endif_text = RTrim(raw_lines[i]);
    }
  }
  if (guard.empty()) {
    out->push_back(
        {rel_path, 1, "header-guard", "missing #ifndef " + expected + " guard"});
    return;
  }
  if (endif_text != "#endif  // " + expected) {
    out->push_back({rel_path, endif_line == 0 ? 1 : endif_line, "header-guard",
                    "closing line must be exactly '#endif  // " + expected + "'"});
  }
}

// --- includes ------------------------------------------------------------

// Extracts the include target and whether it was quoted; empty if not an
// include line.
std::string ParseInclude(const std::string& raw_line, bool* quoted) {
  std::string trimmed = LTrim(raw_line);
  if (!StartsWith(trimmed, "#include")) {
    return std::string();
  }
  size_t start = trimmed.find_first_of("<\"", 8);
  if (start == std::string::npos) {
    return std::string();
  }
  *quoted = trimmed[start] == '"';
  char closer = *quoted ? '"' : '>';
  size_t end = trimmed.find(closer, start + 1);
  if (end == std::string::npos) {
    return std::string();
  }
  return trimmed.substr(start + 1, end - start - 1);
}

bool IsProjectPathInclude(const std::string& target) {
  return StartsWith(target, "src/") || StartsWith(target, "bench/") ||
         StartsWith(target, "tests/") || StartsWith(target, "tools/");
}

}  // namespace

std::string ExpectedHeaderGuard(const std::string& rel_path) {
  std::string guard;
  guard.reserve(rel_path.size() + 1);
  for (char c : rel_path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

std::string StripCommentsAndStrings(const std::string& content) {
  return StripWithMask(content).stripped;
}

std::string FormatViolation(const LintViolation& violation) {
  return violation.file + ":" + std::to_string(violation.line) + ": " +
         violation.rule + ": " + violation.message;
}

std::vector<LintViolation> LintFileContent(const std::string& repo_relative_path,
                                           const std::string& content) {
  SourceFile file{repo_relative_path, content};
  FileModel model = BuildFileModel(file);
  std::vector<LintViolation> found;
  RunLegacyRules(model, &found);
  return found;
}

void RunLegacyRules(FileModel& model, std::vector<LintViolation>* out) {
  const std::string& repo_relative_path = model.file->path;
  const bool is_header =
      repo_relative_path.size() >= 2 &&
      repo_relative_path.compare(repo_relative_path.size() - 2, 2, ".h") == 0;
  const bool is_mutex_header = repo_relative_path == "src/util/mutex.h";

  const std::vector<std::string>& raw_lines = model.raw_lines;
  const std::vector<std::string>& code_lines = model.code_lines;
  const std::string& stripped = model.masked.stripped;

  auto report = [&](size_t index, const char* rule, const std::string& message) {
    out->push_back(
        {repo_relative_path, static_cast<int>(index + 1), rule, message});
  };

  // Pass 1: names declared as unordered containers anywhere in the file, and
  // names declared with a floating-point type (the parallel-accum scan).
  std::vector<std::string> container_decl_names;
  std::vector<std::string> float_decl_names;
  for (const std::string& code : code_lines) {
    for (std::string& name : UnorderedDeclNames(code)) {
      container_decl_names.push_back(std::move(name));
    }
    for (std::string& name : FloatDeclNames(code)) {
      float_decl_names.push_back(std::move(name));
    }
  }

  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& code = code_lines[i];
    auto flag = [&](const char* rule, const std::string& message) {
      if (!model.escapes.Allows(static_cast<int>(i + 1), rule)) {
        report(i, rule, message);
      }
    };

    for (const BannedToken& banned : kBannedTokens) {
      if (FindToken(code, banned.token, banned.require_call, 0) !=
          std::string::npos) {
        flag(banned.rule, std::string(banned.token) + ": " + banned.message);
      }
    }

    if (!is_mutex_header) {
      for (const char* token : kRawSyncTokens) {
        if (ContainsWord(code, token)) {
          flag("raw-sync",
               std::string(token) +
                   ": use the annotated wrappers in src/util/mutex.h so clang "
                   "-Wthread-safety can check locking");
        }
      }
    }

    bool quoted = false;
    std::string include = ParseInclude(raw_lines[i], &quoted);
    if (!include.empty()) {
      if (quoted && !IsProjectPathInclude(include)) {
        flag("include-path",
             "project includes are written from the repo root (src/..., "
             "bench/..., tests/..., tools/...), got \"" + include + "\"");
      }
      auto banned_it = kBannedIncludes.find(include);
      if (banned_it != kBannedIncludes.end()) {
        flag(banned_it->second,
             "#include <" + include + ">: header behind a banned construct; "
             "see the " + std::string(banned_it->second) + " rule");
      }
      auto sync_it = kRawSyncIncludes.find(include);
      if (sync_it != kRawSyncIncludes.end() && !is_mutex_header) {
        flag("raw-sync", "#include <" + include +
                             ">: use src/util/mutex.h wrappers instead");
      }
    }

    std::string range_expr = RangeForExpr(code);
    if (!range_expr.empty()) {
      bool suspicious = range_expr.find("unordered") != std::string::npos;
      for (const std::string& name : container_decl_names) {
        suspicious = suspicious || ContainsWord(range_expr, name);
      }
      if (suspicious) {
        flag("unordered-iter",
             "iteration order over an unordered container is unspecified and "
             "must not feed results; use std::map/std::set or mark the loop "
             "'// detlint: order-independent'");
      }
    }

    if (IsMutableStaticDecl(code)) {
      flag("mutable-global",
           "mutable static state is a hidden channel between runs and "
           "threads; pass state explicitly or justify with '// detlint: "
           "allow(mutable-global) <reason>'");
    }
  }

  // Pass 3: floating-point accumulation order inside parallel extents. Runs
  // over the whole stripped content because call sites routinely span lines.
  auto allowed_on = [&](size_t line, const char* rule) {
    return model.escapes.Allows(static_cast<int>(line + 1), rule);
  };
  CheckParallelAccum(stripped, float_decl_names, allowed_on,
                     [&](size_t line, const char* rule,
                         const std::string& message) { report(line, rule, message); });

  if (is_header) {
    CheckHeaderGuard(repo_relative_path, raw_lines, out);
  }
}

LintReport LintTree(const std::string& root,
                    const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  LintReport report;
  std::vector<fs::path> files;
  for (const std::string& subdir : subdirs) {
    fs::path base = fs::path(root) / subdir;
    if (!fs::exists(base)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    std::ifstream stream(path);
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    std::string rel = fs::relative(path, root).generic_string();
    ++report.files_scanned;
    for (LintViolation& violation : LintFileContent(rel, buffer.str())) {
      report.violations.push_back(std::move(violation));
    }
  }
  return report;
}

ProjectReport LintProjectSources(std::vector<SourceFile> sources,
                                 const ProjectOptions& options) {
  std::sort(sources.begin(), sources.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  std::vector<FileModel> models;
  models.reserve(sources.size());
  for (const SourceFile& file : sources) {
    models.push_back(BuildFileModel(file));
  }

  ProjectReport report;
  report.files_scanned = static_cast<int>(sources.size());

  if (options.legacy) {
    for (FileModel& model : models) {
      RunLegacyRules(model, &report.violations);
    }
  }

  if (options.rng) {
    RngPassContext context = BuildRngPassContext(models);
    for (FileModel& model : models) {
      for (LintViolation& violation : RunRngPass(model, context, models)) {
        report.violations.push_back(std::move(violation));
      }
    }
  }

  if (options.lock) {
    LockPassReport lock = RunLockPass(models);
    report.lock_mutexes = lock.mutexes;
    report.lock_edges = lock.edges;
    report.lock_cycle = lock.cycle;
    for (LintViolation& violation : lock.violations) {
      report.violations.push_back(std::move(violation));
    }
  }

  if (options.layer) {
    if (!options.has_layers) {
      report.violations.push_back(
          {options.layers_path, 1, "layer-unknown",
           "layers.txt not found; the layering pass needs the declared "
           "layer order (bottom-up, one layer per line)"});
    } else {
      LayerSpec spec;
      std::string error;
      if (!ParseLayers(options.layers_text, &spec, &error)) {
        report.violations.push_back(
            {options.layers_path, 1, "layer-unknown", error});
      } else {
        report.layer_count = spec.layer_count;
        LayerPassReport layer =
            RunLayerPass(models, spec, options.layers_path);
        report.include_edges = layer.include_edges;
        report.include_cycle = layer.cycle;
        for (LintViolation& violation : layer.violations) {
          report.violations.push_back(std::move(violation));
        }
      }
    }
  }

  // Escape hygiene: only meaningful when every pass had the chance to consume
  // its escapes.
  if (options.check_escapes && options.legacy && options.rng && options.lock &&
      options.layer) {
    for (FileModel& model : models) {
      for (const Escape& escape : model.escapes.escapes()) {
        if (!escape.used) {
          report.violations.push_back(
              {model.file->path, escape.line, "unused-escape",
               "this '// detlint:' escape no longer suppresses any finding; "
               "prune it so escapes stay meaningful"});
        } else if (!escape.has_reason) {
          report.violations.push_back(
              {model.file->path, escape.line, "escape-reason",
               "escape carries no justification; append the reason the "
               "suppressed construct is sound"});
        }
      }
    }
  }

  std::sort(report.violations.begin(), report.violations.end(),
            [](const LintViolation& a, const LintViolation& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

ProjectReport LintProject(const std::string& root,
                          const std::vector<std::string>& subdirs,
                          ProjectOptions options) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const std::string& subdir : subdirs) {
    fs::path base = fs::path(root) / subdir;
    if (!fs::exists(base)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc") {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> sources;
  sources.reserve(paths.size());
  for (const fs::path& path : paths) {
    std::ifstream stream(path);
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    sources.push_back({fs::relative(path, root).generic_string(), buffer.str()});
  }
  if (options.layer && !options.has_layers) {
    fs::path layers = fs::path(root) / "tools" / "lint" / "layers.txt";
    if (fs::exists(layers)) {
      std::ifstream stream(layers);
      std::ostringstream buffer;
      buffer << stream.rdbuf();
      options.layers_text = buffer.str();
      options.has_layers = true;
    }
  }
  return LintProjectSources(std::move(sources), options);
}

}  // namespace litereconfig
