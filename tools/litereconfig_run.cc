// Command-line runner: the C++ analogue of the artifact's
// `python LiteReconfig.py --gl <contention> --lat_req <slo> --mobile_device=<dev>`
// entry point. Runs one protocol over a synthetic validation set and prints the
// evaluation summary; optionally writes per-GoF samples as CSV and the full
// decision trace as JSON lines.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/baselines/approxdet.h"
#include "src/baselines/knob_protocols.h"
#include "src/pipeline/litereconfig_protocol.h"
#include "src/pipeline/runner.h"
#include "src/pipeline/workbench.h"
#include "src/util/flags.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace litereconfig {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags(
      "litereconfig_run — run a video object detection protocol under a device/"
      "contention/SLO configuration and report mAP and latency.");
  flags.Define("device", "tx2", "target device: tx2 | xavier");
  flags.Define("lat_req", "33.3", "latency objective per frame, ms");
  flags.Define("gl", "0", "GPU contention level in percent (0-99)");
  flags.Define("protocol", "litereconfig",
               "litereconfig | mincost | maxcontent-resnet | maxcontent-mobilenet"
               " | approxdet | ssd | yolo");
  flags.Define("videos", "0",
               "validation videos to run (0 = the full default validation set)");
  flags.Define("run_salt", "1", "seed distinguishing independent online runs");
  flags.Define("threads", "0",
               "worker threads for the per-video fan-out (0 = all cores); "
               "results (traces included) are identical for every value");
  flags.Define("csv", "", "write per-GoF amortized latency samples to this CSV");
  flags.Define("trace", "",
               "write the decision trace (JSONL) here; LiteReconfig variants only");
  std::string preset_list = FaultPresetList();
  flags.Define("faults", "none", "fault-injection schedule: " + preset_list);
  flags.Define("fault_seed", "1",
               "seed for the deterministic fault streams (per-video substreams)");
  flags.Define("degrade", "1",
               "1 = graceful degradation (watchdog, bounded retry, coast mode, "
               "cheapest-branch fallback); 0 = naive blocking retries");
  flags.Define("predictive", "0",
               "1 = predictive robustness (contention forecasting, headroom-"
               "first planning under burst pressure, pre-emptive re-plans, "
               "drift-triggered recalibration); requires --degrade=1");
  flags.Define("cpu_family", "0",
               "1 = extend the branch space with the CPU-only detector family "
               "(the scheduler's demotion target during gpu_denied intervals); "
               "LiteReconfig variants only");
  flags.Define("json", "", "write the full evaluation result as one-line JSON here");
  if (!flags.Parse(argc, argv)) {
    flags.PrintHelp(flags.help_requested() ? std::cout : std::cerr);
    return flags.help_requested() ? 0 : 1;
  }

  DeviceType device =
      flags.GetString("device") == "xavier" ? DeviceType::kXavier : DeviceType::kTx2;
  double slo = flags.GetDouble("lat_req");
  double contention = flags.GetDouble("gl") / 100.0;
  const Workbench& wb = Workbench::Get(device);

  Dataset validation = wb.validation();
  int max_videos = flags.GetInt("videos");
  if (max_videos > 0 && static_cast<size_t>(max_videos) < validation.videos.size()) {
    validation.videos.resize(static_cast<size_t>(max_videos));
  }

  std::ofstream trace_file;
  std::unique_ptr<TraceWriter> trace;
  std::unique_ptr<Protocol> protocol;
  std::string name = flags.GetString("protocol");
  if (name == "litereconfig" || name == "mincost" || name == "maxcontent-resnet" ||
      name == "maxcontent-mobilenet") {
    SchedulerConfig config = LiteReconfigProtocol::FullConfig();
    if (name == "mincost") {
      config = LiteReconfigProtocol::MinCostConfig();
    } else if (name == "maxcontent-resnet") {
      config = LiteReconfigProtocol::MaxContentConfig(FeatureKind::kResNet50);
    } else if (name == "maxcontent-mobilenet") {
      config = LiteReconfigProtocol::MaxContentConfig(FeatureKind::kMobileNetV2);
    }
    const TrainedModels& models =
        flags.GetInt("cpu_family") != 0 ? wb.cpu_family_models() : wb.models();
    auto lrc = std::make_unique<LiteReconfigProtocol>(&models, config, name);
    if (!flags.GetString("trace").empty()) {
      trace_file.open(flags.GetString("trace"));
      if (!trace_file) {
        std::cerr << "cannot open trace file " << flags.GetString("trace") << "\n";
        return 1;
      }
      trace = std::make_unique<TraceWriter>(trace_file);
      lrc->set_trace_writer(trace.get());
    }
    protocol = std::move(lrc);
  } else if (name == "approxdet") {
    protocol = std::make_unique<ApproxDetProtocol>(&wb.models());
  } else if (name == "ssd" || name == "yolo") {
    LatencyModel profile(device, 0.0);
    protocol = std::make_unique<StaticKnobProtocol>(
        name == "ssd" ? BaselineFamily::kSsd : BaselineFamily::kYolo,
        name == "ssd" ? "SSD+" : "YOLO+", wb.train(), profile, slo);
  } else {
    std::cerr << "unknown protocol '" << name << "'\n";
    flags.PrintHelp(std::cerr);
    return 1;
  }

  EvalConfig config;
  config.device = device;
  config.gpu_contention = contention;
  config.slo_ms = slo;
  config.run_salt = static_cast<uint64_t>(flags.GetInt("run_salt"));
  config.threads = flags.GetInt("threads");
  std::optional<FaultSpec> faults = FaultSpec::FromName(flags.GetString("faults"));
  if (!faults) {
    std::cerr << "unknown fault schedule '" << flags.GetString("faults")
              << "' (want " << preset_list << ")\n";
    return 1;
  }
  config.faults = *faults;
  config.fault_seed = static_cast<uint64_t>(flags.GetInt("fault_seed"));
  config.degrade = flags.GetInt("degrade") != 0;
  config.predictive = flags.GetInt("predictive") != 0;
  EvalResult result = OnlineRunner::Run(*protocol, validation, config);

  if (trace != nullptr) {
    // Flush buffered trace records in dataset video order, making the trace
    // byte-identical at any --threads value.
    std::vector<uint64_t> video_order;
    video_order.reserve(validation.videos.size());
    for (const SyntheticVideo& video : validation.videos) {
      video_order.push_back(video.spec().seed);
    }
    trace->Flush(video_order);
  }
  if (!flags.GetString("json").empty()) {
    std::ofstream json(flags.GetString("json"));
    if (!json) {
      std::cerr << "cannot open json file " << flags.GetString("json") << "\n";
      return 1;
    }
    json << EvalResultJson(result) << "\n";
  }
  if (result.oom) {
    std::cout << "result: OOM (protocol does not fit on this device)\n";
    return 0;
  }
  std::cout << "protocol:        " << protocol->name() << "\n"
            << "device:          " << GetDeviceProfile(device).name << "\n"
            << "SLO:             " << FmtDouble(slo, 1) << " ms, contention "
            << FmtDouble(contention * 100, 0) << "%\n"
            << "frames:          " << result.frames << "\n"
            << "mAP:             " << FmtDouble(result.map * 100.0, 2) << " %\n"
            << "latency mean:    " << FmtDouble(result.mean_ms, 2) << " ms\n"
            << "latency P95:     " << FmtDouble(result.p95_ms, 2) << " ms ("
            << (result.MeetsSlo(slo) ? "meets SLO" : "VIOLATES SLO") << ")\n"
            << "violation rate:  " << FmtDouble(result.violation_rate * 100.0, 2)
            << " %\n"
            << "branch coverage: " << result.branch_coverage << " ("
            << result.switch_count << " switches)\n"
            << "time split:      detector " << FmtDouble(result.detector_frac * 100, 1)
            << "%, tracker " << FmtDouble(result.tracker_frac * 100, 1)
            << "%, scheduler " << FmtDouble(result.scheduler_frac * 100, 1)
            << "%, switching " << FmtDouble(result.switch_frac * 100, 1) << "%\n";
  if (config.faults.Any()) {
    std::cout << "faults:          " << flags.GetString("faults") << " (seed "
              << config.fault_seed << ", degradation "
              << (config.degrade ? "on" : "off") << ")\n"
              << "robustness:      " << result.faults_injected << " injected, "
              << result.faults_absorbed << " absorbed, "
              << result.deadline_misses << " deadline misses, "
              << result.degraded_frames << " degraded frames, mean recovery "
              << FmtDouble(result.mean_recovery_gofs, 2) << " GoFs\n";
    if (config.predictive) {
      std::cout << "predictive:      " << result.recalibrations
                << " recalibrations, " << result.reanchors << " re-anchors, "
                << result.preemptive_replans << " pre-emptive re-plans, "
                << result.forecast_absorbed << " faults absorbed under a "
                << "forecast plan\n";
    }
  }

  if (!flags.GetString("csv").empty()) {
    std::ofstream csv(flags.GetString("csv"));
    if (!csv) {
      std::cerr << "cannot open csv file " << flags.GetString("csv") << "\n";
      return 1;
    }
    csv << "gof_index,frame_ms\n";
    for (size_t i = 0; i < result.gof_frame_ms.size(); ++i) {
      csv << i << "," << FmtDouble(result.gof_frame_ms[i], 4) << "\n";
    }
    std::cout << "wrote " << result.gof_frame_ms.size() << " samples to "
              << flags.GetString("csv") << "\n";
  }
  if (trace != nullptr) {
    std::cout << "wrote " << trace->count() << " decision records to "
              << flags.GetString("trace") << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace litereconfig

int main(int argc, char** argv) { return litereconfig::Run(argc, argv); }
